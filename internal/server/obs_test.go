package server_test

// Wall-clock observability coverage: liveness/readiness endpoints,
// request correlation, the /v1/metrics exposition, pprof gating, and the
// slow-SSE-subscriber isolation contract.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// newRawServer starts an in-process daemon exposed over real HTTP and
// returns it with its base URL (for endpoints the Go client does not
// wrap) plus a client for the ones it does.
func newRawServer(t *testing.T, opts server.Options) (*server.Server, string, *client.Client) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(testWriter{t}, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	cl.PollInterval = 10 * time.Millisecond
	return srv, ts.URL, cl
}

// get fetches one plain endpoint and returns status and trimmed body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(body))
}

// TestHealthzReadyzDrain pins the probe semantics: /healthz stays 200
// for the life of the listener (a draining daemon is finishing accepted
// work, not dead), while /readyz flips to 503 the moment drain begins —
// strictly before in-flight jobs finish.
func TestHealthzReadyzDrain(t *testing.T) {
	srv, base, cl := newRawServer(t, server.Options{})

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != http.StatusOK || body != "ready" {
		t.Fatalf("/readyz = %d %q, want 200 ready", code, body)
	}

	// Park a job that will still be running when drain starts.
	j, err := cl.SubmitRun(context.Background(), runReq(obsSeed(1), longValues()))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, j.ID, api.JobRunning)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()

	// Drain must flip readiness while the job is still in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := get(t, base+"/readyz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after drain began")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got, err := cl.Job(context.Background(), j.ID); err != nil || got.State != api.JobRunning {
		t.Fatalf("job state while draining = %v/%v, want still running (readyz must flip before jobs settle)", got.State, err)
	}
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d during drain, want 200 (liveness is not readiness)", code)
	}

	// Release the drain and confirm it settles.
	if _, err := cl.Cancel(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRequestIDCorrelation pins the correlation contract: the daemon
// echoes a caller-supplied X-Request-Id and mints one otherwise.
func TestRequestIDCorrelation(t *testing.T) {
	_, base, _ := newRawServer(t, server.Options{})

	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
	req.Header.Set(obs.RequestIDHeader, "r-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "r-test-42" {
		t.Fatalf("echoed request id = %q, want caller's r-test-42", got)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); !strings.HasPrefix(got, "r-") {
		t.Fatalf("minted request id = %q, want r-… form", got)
	}
}

// TestMetricsExposition drives one job through the daemon and asserts
// the wall-clock metrics — request histograms, job counters, scheduler
// cell timings — appear in the Prometheus exposition and /v1/stats.
func TestMetricsExposition(t *testing.T) {
	srv, base, cl := newRawServer(t, server.Options{})

	j, err := cl.SubmitRun(context.Background(), runReq(obsSeed(2), []int{500, 900, 1300}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, base+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("/v1/metrics = %d", code)
	}
	for _, want := range []string{
		`obs_http_requests_total{route="POST /v1/runs",status="2xx"}`,
		`obs_http_request_duration_seconds_count{route="POST /v1/runs",status="2xx"}`,
		`rmserved_jobs_submitted_total{kind="run"} 1`,
		`obs_sched_cells_finished_total{outcome="simulated"} 1`,
		"obs_sched_cell_wait_seconds_count 1",
		"obs_queue_depth 0",
		"obs_jobs_in_flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	vals := srv.Metrics().Values()
	if vals["obs_sched_cells_queued_total"] != 1 {
		t.Errorf("obs_sched_cells_queued_total = %v, want 1", vals["obs_sched_cells_queued_total"])
	}
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Telemetry[`rmserved_jobs_finished_total{state="done"}`] != 1 {
		t.Errorf("stats telemetry = %v, want finished done=1", stats.Telemetry)
	}
}

// TestPprofGating pins that profiling endpoints exist only behind the
// opt-in flag.
func TestPprofGating(t *testing.T) {
	_, base, _ := newRawServer(t, server.Options{})
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without EnablePprof = %d, want 404", code)
	}

	_, base, _ = newRawServer(t, server.Options{EnablePprof: true})
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ with EnablePprof = %d, want 200 with profile index", code)
	}
	if code, _ := get(t, base+"/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d, want 200", code)
	}
}

// TestSSESlowSubscriberDoesNotBlock pins the backpressure contract of
// the event hub: a subscriber that never reads its stream must not delay
// job completion, job cancellation, or a healthy subscriber's terminal
// frame.
func TestSSESlowSubscriberDoesNotBlock(t *testing.T) {
	srv, base, cl := newRawServer(t, server.Options{})

	j, err := cl.SubmitRun(context.Background(), runReq(obsSeed(3), longValues()))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, j.ID, api.JobRunning)

	// The stalled subscriber: open the stream, read only the response
	// header, then never touch the body again.
	stalled, err := http.Get(base + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close()
	if stalled.StatusCode != http.StatusOK {
		t.Fatalf("stalled subscribe = %d", stalled.StatusCode)
	}

	// The subscriber gauge should see it connected.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Values()["obs_sse_subscribers"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("obs_sse_subscribers never reached 1")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A healthy subscriber alongside it.
	healthy := make(chan api.Job, 1)
	go func() {
		last, err := cl.Events(context.Background(), j.ID, nil)
		if err != nil {
			t.Errorf("healthy subscriber: %v", err)
		}
		healthy <- last
	}()

	// Cancellation waits for the job's terminal transition server-side;
	// if a stalled reader could block completion, this call would hang
	// past the deadline instead of returning the cancelled snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := cl.Cancel(ctx, j.ID)
	if err != nil {
		t.Fatalf("cancel with stalled subscriber attached: %v", err)
	}
	if done.State != api.JobCancelled {
		t.Fatalf("cancelled job state = %q", done.State)
	}

	select {
	case last := <-healthy:
		if last.State != api.JobCancelled {
			t.Fatalf("healthy subscriber's terminal frame = %q, want cancelled", last.State)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("healthy subscriber never saw the terminal frame")
	}
}

// TestSSEStreamStillServesTerminalFrame guards the non-stalled path of
// the same hub: a reader that consumes the stream sees every state
// through terminal EOF even while another stream is stalled.
func TestSSEStreamStillServesTerminalFrame(t *testing.T) {
	_, base, cl := newRawServer(t, server.Options{})
	j, err := cl.SubmitRun(context.Background(), runReq(obsSeed(4), []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var frame api.Job
			if err := json.Unmarshal([]byte(data), &frame); err != nil {
				t.Fatal(err)
			}
			states = append(states, frame.State)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != api.JobDone {
		t.Fatalf("streamed states = %v, want trailing %q", states, api.JobDone)
	}
}

// obsSeed namespaces this file's seeds away from server_test.go's so
// runs are never memory-hits from another test's scheduler cells.
func obsSeed(n uint64) uint64 { return 0xb5_0000 + n }
