package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/experiment"
	"repro/internal/server"
)

// newTestServer starts an in-process daemon and a client against it.
func newTestServer(t *testing.T, opts server.Options) (*server.Server, *client.Client) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(testWriter{t}, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	cl.PollInterval = 10 * time.Millisecond
	return srv, cl
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// runReq builds a cheap, fully wire-expressible run request: a custom
// workload replay, one simulated period per value.
func runReq(seed uint64, values []int) api.RunRequest {
	return api.RunRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     api.AlgPredictive,
		Seed:          &seed,
		Task: api.TaskSpec{
			Pattern: api.Pattern{Kind: api.PatternCustom, Label: "server-test", Values: values},
		},
	}
}

// longValues is a workload long enough (several seconds of wall time)
// that a job is reliably still running when the test cancels it.
func longValues() []int {
	v := make([]int, 500_000)
	for i := range v {
		v[i] = 9000
	}
	return v
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// waitForState polls until the job reaches the wanted state (or any
// terminal one).
func waitForState(t *testing.T, cl *client.Client, id, want string) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if api.TerminalState(j.State) {
			t.Fatalf("job %s reached terminal state %q (error %q) before %q", id, j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return api.Job{}
}

// TestSubmitRunMatchesDirectScheduledRun is the acceptance criterion:
// a run submitted over the API must produce byte-for-byte the same
// result as calling experiment.ScheduledRun directly — even when the
// direct run re-simulates from scratch.
func TestSubmitRunMatchesDirectScheduledRun(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	req := runReq(770001, []int{500, 2500, 4500, 2500, 500})

	j, err := cl.SubmitRun(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobDone || j.Run == nil {
		t.Fatalf("job %s ended %q (error %q), want done with a run result", j.ID, j.State, j.Error)
	}

	// Recompute the same cell locally with a cold memo, so the comparison
	// is against a fresh simulation, not the daemon's memoized result.
	experiment.ResetSweepCache()
	cfg, alg, setups, err := experiment.MaterializeRun(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := experiment.ScheduledRun(cfg, alg, setups)
	if err != nil {
		t.Fatal(err)
	}
	direct := experiment.OutcomeToAPI(out)
	if got, want := mustJSON(t, *j.Run), mustJSON(t, direct); got != want {
		t.Errorf("API result differs from direct ScheduledRun:\n got %s\nwant %s", got, want)
	}
}

// TestDedupConcurrentIdenticalSubmissions: two clients racing the same
// spec cost one simulation, and /v1/stats shows the dedup.
func TestDedupConcurrentIdenticalSubmissions(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	req := runReq(770002, []int{600, 3000, 6000, 3000, 600})

	before, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]api.Job, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := cl.SubmitRun(context.Background(), req)
			if err == nil {
				j, err = cl.Wait(context.Background(), j.ID)
			}
			results[i], errs[i] = j, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		if results[i].State != api.JobDone || results[i].Run == nil {
			t.Fatalf("submission %d ended %q (error %q)", i, results[i].State, results[i].Error)
		}
	}
	if a, b := mustJSON(t, *results[0].Run), mustJSON(t, *results[1].Run); a != b {
		t.Errorf("identical submissions returned different results:\n%s\n%s", a, b)
	}

	after, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sim := after.Scheduler.Simulated - before.Scheduler.Simulated
	shared := (after.Scheduler.Deduped - before.Scheduler.Deduped) +
		(after.Scheduler.MemoryHits - before.Scheduler.MemoryHits)
	if sim != 1 {
		t.Errorf("two identical submissions simulated %d cells, want exactly 1", sim)
	}
	if shared != 1 {
		t.Errorf("dedup not visible in /v1/stats: deduped+memory_hits moved by %d, want 1", shared)
	}
}

// TestCancelMidRun: DELETE on a running job cancels the underlying
// simulation and reports the cancelled terminal state.
func TestCancelMidRun(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	before, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	j, err := cl.SubmitRun(context.Background(), runReq(770003, longValues()))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, j.ID, api.JobRunning)

	start := time.Now()
	j, err = cl.Cancel(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobCancelled {
		t.Fatalf("after DELETE, job state %q, want %q", j.State, api.JobCancelled)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; the engine should notice within a few thousand events", elapsed)
	}

	// The scheduler counts the abandoned cell once its worker observes
	// the cancellation; allow a moment for the counter to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		after, err := cl.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if after.Scheduler.Cancelled > before.Scheduler.Cancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Error("scheduler cancelled counter never moved after DELETE")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cancelling again is a conflict: the job is already terminal.
	if _, err := cl.Cancel(context.Background(), j.ID); err == nil {
		t.Error("second DELETE succeeded, want conflict")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict {
			t.Errorf("second DELETE error %v, want code %q", err, api.CodeConflict)
		}
	}
}

// TestQueueFullReturns429: with one worker and a one-deep queue, a third
// submission is rejected with the queue_full envelope.
func TestQueueFullReturns429(t *testing.T) {
	_, cl := newTestServer(t, server.Options{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	running, err := cl.SubmitRun(ctx, runReq(770004, longValues()))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, running.ID, api.JobRunning)

	queued, err := cl.SubmitRun(ctx, runReq(770005, longValues()))
	if err != nil {
		t.Fatal(err)
	}

	_, err = cl.SubmitRun(ctx, runReq(770006, longValues()))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != api.CodeQueueFull {
		t.Fatalf("third submission error %v, want 429 %s", err, api.CodeQueueFull)
	}

	// Cancel the queued job first (it must cancel promptly without ever
	// holding a worker), then the running one.
	if j, err := cl.Cancel(ctx, queued.ID); err != nil || j.State != api.JobCancelled {
		t.Fatalf("cancelling queued job: state %q err %v", j.State, err)
	}
	if j, err := cl.Cancel(ctx, running.ID); err != nil || j.State != api.JobCancelled {
		t.Fatalf("cancelling running job: state %q err %v", j.State, err)
	}
}

// TestDrain: admissions close, in-flight jobs finish, and results stay
// fetchable after the drain completes.
func TestDrain(t *testing.T) {
	srv, cl := newTestServer(t, server.Options{})
	ctx := context.Background()

	j, err := cl.SubmitRun(ctx, runReq(770007, []int{700, 1400, 2100}))
	if err != nil {
		t.Fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The accepted job finished during the drain, and its result is still
	// fetchable.
	got, err := cl.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobDone || got.Run == nil {
		t.Errorf("after drain, job state %q (error %q), want done with a result", got.State, got.Error)
	}

	// New submissions are rejected with the draining envelope.
	_, err = cl.SubmitRun(ctx, runReq(770008, []int{500}))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != api.CodeDraining {
		t.Errorf("submission during drain: %v, want 503 %s", err, api.CodeDraining)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("/v1/stats does not report draining")
	}
}

// TestSSEEventSequence: the events stream yields queued/running frames
// in order and terminates with done.
func TestSSEEventSequence(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	j, err := cl.SubmitRun(context.Background(), runReq(770009, []int{800, 1600, 2400, 1600}))
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	last, err := cl.Events(context.Background(), j.ID, func(j api.Job) {
		states = append(states, j.State)
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.State != api.JobDone || last.Run == nil {
		t.Fatalf("stream ended %q (error %q), want done with a result", last.State, last.Error)
	}
	rank := map[string]int{api.JobQueued: 0, api.JobRunning: 1, api.JobDone: 2}
	for i := 1; i < len(states); i++ {
		if rank[states[i]] < rank[states[i-1]] {
			t.Errorf("states regressed: %v", states)
			break
		}
	}
	if states[len(states)-1] != api.JobDone {
		t.Errorf("final frame %q, want done (all frames: %v)", states[len(states)-1], states)
	}
}

// TestSubmitValidationAggregates: a multiply-broken request fails
// synchronously with every field error in one envelope.
func TestSubmitValidationAggregates(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	req := api.RunRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     "oracle",
		Task:          api.TaskSpec{Pattern: api.Pattern{Kind: "sawtooth"}, Models: "vibes"},
	}
	_, err := cl.SubmitRun(context.Background(), req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("got %v, want 400 %s", err, api.CodeBadRequest)
	}
	for _, frag := range []string{"oracle", "sawtooth", "vibes"} {
		if !strings.Contains(apiErr.Message, frag) {
			t.Errorf("aggregated message should mention %q; got: %s", frag, apiErr.Message)
		}
	}
}

// TestJobNotFound: unknown ids get the 404 envelope.
func TestJobNotFound(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	_, err := cl.Job(context.Background(), "job-999999")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != api.CodeNotFound {
		t.Fatalf("got %v, want 404 %s", err, api.CodeNotFound)
	}
}

// TestSweepJob: a sweep submitted over the API matches the direct
// SweepSeeds result exactly.
func TestSweepJob(t *testing.T) {
	_, cl := newTestServer(t, server.Options{})
	req := api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Pattern:       api.SweepTriangular,
		Points:        []int{1, 2},
	}
	j, err := cl.SubmitSweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobDone || j.Sweep == nil {
		t.Fatalf("sweep ended %q (error %q)", j.State, j.Error)
	}
	direct, err := experiment.SweepSeeds(req.Points, experiment.TriangularFactory, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, *j.Sweep), mustJSON(t, experiment.SweepToAPI(direct)); got != want {
		t.Errorf("API sweep differs from direct SweepSeeds:\n got %s\nwant %s", got, want)
	}
}
