// Package server implements rmserved: the long-lived HTTP daemon that
// turns the shared run scheduler (internal/experiment) into a
// multi-tenant simulation service. Jobs submitted as api wire specs flow
// through ScheduledRunContext / SweepSeedsContext, so identical
// submissions dedup via single-flight and the content-addressed disk
// cache exactly as batch experiments do; the serving layer adds the
// production behaviors batch mode never needed — a bounded queue with
// 429 backpressure, per-job cancellation, SSE progress streams,
// request-scoped structured logging, and graceful drain.
//
// Endpoints (all under /v1, JSON in and out, errors in a uniform
// {"error":{code,message}} envelope):
//
//	POST   /v1/runs             submit one simulation        → api.Job
//	POST   /v1/sweeps           submit one figure sweep      → api.Job
//	GET    /v1/jobs             list jobs, newest last       → []api.Job
//	GET    /v1/jobs/{id}        job status + result          → api.Job
//	DELETE /v1/jobs/{id}        cancel a queued/running job  → api.Job
//	GET    /v1/jobs/{id}/events SSE stream of job snapshots
//	GET    /v1/stats            scheduler + queue + telemetry → api.Stats
//	GET    /v1/metrics          Prometheus text exposition
//	GET    /v1/healthz          liveness (200 "ok", 503 when draining)
//
// Plain operational endpoints (outside the versioned API, no JSON):
//
//	GET /healthz        liveness: 200 while the process serves at all
//	GET /readyz         readiness: 503 the instant drain begins
//	GET /debug/pprof/*  runtime profiling (only with Options.EnablePprof)
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Options configures a Server. The zero value serves with NumCPU
// workers, a 64-deep queue, and no persistent cache.
type Options struct {
	// Workers bounds concurrently executing jobs; ≤0 means NumCPU.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// are rejected with 429. ≤0 means 64.
	QueueDepth int
	// Parallelism is handed to the run scheduler per sweep (simulations
	// per sweep job); ≤0 means NumCPU.
	Parallelism int
	// CacheDir, when set, opens a persistent content-addressed run cache
	// and installs it on the shared scheduler.
	CacheDir string
	// Logger receives request- and job-scoped structured logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be
	// opted into on a daemon that may face untrusted clients.
	EnablePprof bool
	// Now overrides the wall clock (tests); nil means time.Now.
	Now func() time.Time
}

// Server is the rmserved daemon: an http.Handler plus the job table and
// worker pool behind it.
type Server struct {
	opts Options
	mux  *http.ServeMux
	log  *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for GET /v1/jobs
	queued int      // jobs admitted but not yet holding a worker slot

	slots    chan struct{} // worker-slot semaphore
	draining atomic.Bool
	inflight sync.WaitGroup // every admitted, unfinished job

	metrics *obs.Metrics
	nextID  atomic.Uint64
}

// New builds a Server and installs its routes. When opts.CacheDir is
// set the persistent cache is opened (and created) immediately so a
// misconfigured directory fails at startup, not at the first job.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.CacheDir != "" {
		cache, err := experiment.OpenDiskCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		experiment.SetDiskCache(cache)
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		log:     opts.Logger,
		jobs:    make(map[string]*job),
		slots:   make(chan struct{}, opts.Workers),
		metrics: obs.NewMetrics(),
	}
	// The run scheduler is process-global, so its wall-clock observer is
	// too; the most recently constructed Server owns it (matching how
	// SetDiskCache already behaves for the cache).
	experiment.SetWallObserver(s.metrics)
	s.routes()
	return s, nil
}

func (s *Server) now() time.Time { return s.opts.Now() }

// Metrics exposes the server's wall-clock metric surface (tests, and
// embedding binaries that want to record their own serving metrics).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// counter bumps a named server metric.
func (s *Server) counter(name string, labels ...telemetry.Label) {
	s.metrics.Inc(name, labels...)
}

func (s *Server) routes() {
	for route, h := range map[string]http.HandlerFunc{
		"POST /v1/runs":            s.handleSubmitRun,
		"POST /v1/sweeps":          s.handleSubmitSweep,
		"GET /v1/jobs":             s.handleListJobs,
		"GET /v1/jobs/{id}":        s.handleGetJob,
		"DELETE /v1/jobs/{id}":     s.handleCancelJob,
		"GET /v1/jobs/{id}/events": s.handleJobEvents,
		"GET /v1/stats":            s.handleStats,
		"GET /v1/metrics":          s.handleMetrics,
	} {
		s.mux.HandleFunc(route, s.logged(route, h))
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz", s.handleLiveness)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.opts.EnablePprof {
		// pprof's index dispatches /debug/pprof/{heap,goroutine,...}
		// itself; symbol accepts POST, so these patterns carry no method.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// ServeHTTP makes the Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// logged wraps a handler with request-scoped observability: every
// request gets a correlation ID (the client's X-Request-Id when it sent
// one, a fresh one otherwise) threaded through the request context and
// echoed on the response, completion is logged with status and duration,
// and the per-route latency histogram is fed. route is the mux pattern,
// so metric labels stay bounded no matter what path IDs clients use.
func (s *Server) logged(route string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		rw.Header().Set(obs.RequestIDHeader, id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		log := s.log.With("req", id, "method", r.Method, "path", r.URL.Path)
		log.Debug("request start")
		h(rw, r)
		dur := s.now().Sub(start)
		s.metrics.ObserveHTTP(route, rw.status, dur)
		log.Info("request done", "status", rw.status, "dur_ms", dur.Milliseconds())
	}
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE streaming works through
// the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorEnvelope{Error: api.Error{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// admit reserves a queue position for a new job, enforcing drain and
// backpressure. On success the caller owns one inflight stake.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; not accepting new jobs")
		s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "draining"})
		return false
	}
	s.mu.Lock()
	if s.queued >= s.opts.QueueDepth {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, api.CodeQueueFull, "job queue full (%d waiting); retry later", s.opts.QueueDepth)
		s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "queue_full"})
		return false
	}
	s.queued++
	s.metrics.SetQueueDepth(s.queued)
	s.mu.Unlock()
	return true
}

// dequeued records one job leaving the waiting queue (for a worker slot
// or for cancellation).
func (s *Server) dequeued() {
	s.mu.Lock()
	s.queued--
	s.metrics.SetQueueDepth(s.queued)
	s.mu.Unlock()
}

// enqueue registers the job and hands it to the worker pool.
func (s *Server) enqueue(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.counter("rmserved_jobs_submitted_total", telemetry.Label{Key: "kind", Value: j.kind})
	s.inflight.Add(1)
	s.metrics.AddInFlight(1)
	go func() {
		defer s.inflight.Done()
		defer s.metrics.AddInFlight(-1)
		// Hold a worker slot for the whole execution; cancellation while
		// queued skips the wait so a full pool cannot delay a DELETE.
		select {
		case s.slots <- struct{}{}:
		case <-j.ctx.Done():
			s.dequeued()
			j.transition(api.JobCancelled, func(j *job) {
				j.errMsg = j.ctx.Err().Error()
				j.finished = s.now()
			})
			s.counter("rmserved_jobs_finished_total", telemetry.Label{Key: "state", Value: api.JobCancelled})
			return
		}
		s.dequeued()
		defer func() { <-s.slots }()
		s.execute(j)
		s.counter("rmserved_jobs_finished_total", telemetry.Label{Key: "state", Value: j.snapshot().State})
	}()
}

// newJob allocates a job shell in the queued state. The job context
// carries both correlation IDs, so everything executed on the job's
// behalf — scheduler cells, remote delegation — can be tied back to the
// submission, and the accept log line links request to job.
func (s *Server) newJob(r *http.Request, kind string) *job {
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	ctx := obs.WithJobID(context.Background(), id)
	if req := obs.RequestID(r.Context()); req != "" {
		ctx = obs.WithRequestID(ctx, req)
	}
	ctx, cancel := context.WithCancel(ctx)
	s.log.Info("job accepted", append(obs.ContextAttrs(ctx), "kind", kind)...)
	return &job{
		id:      id,
		kind:    kind,
		state:   api.JobQueued,
		created: s.now(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding run request: %v", err)
		return
	}
	// Validate the whole spec here — including materialization — so a bad
	// request fails synchronously with every field error, not as a failed
	// job minutes later.
	if _, _, _, err := experiment.MaterializeRun(req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if !s.admit(w) {
		return
	}
	j := s.newJob(r, "run")
	j.run = req
	s.enqueue(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding sweep request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if !s.admit(w) {
		return
	}
	j := s.newJob(r, "sweep")
	j.sweep = req
	s.enqueue(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// lookup fetches a job by path id, writing the 404 envelope on miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]api.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if api.TerminalState(j.snapshot().State) {
		writeError(w, http.StatusConflict, api.CodeConflict, "job %s already %s", j.id, j.snapshot().State)
		return
	}
	s.log.Info("job cancel requested", "job", j.id)
	j.cancel()
	// The queued-state fast path and the scheduler's context propagation
	// both resolve promptly; wait for the terminal transition so the
	// response carries the final state.
	<-j.done
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobEvents streams job snapshots as Server-Sent Events until the
// job reaches a terminal state or the client disconnects. Every stream
// opens with the current snapshot, so subscribing to a finished job
// yields exactly one frame.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	events, unsub := j.subscribe()
	defer unsub()
	s.metrics.AddSSESubscribers(1)
	defer s.metrics.AddSSESubscribers(-1)

	emit := func(snap api.Job) bool {
		data, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
		fl.Flush()
		return !api.TerminalState(snap.State)
	}
	if !emit(j.snapshot()) {
		return
	}
	for {
		select {
		case snap := <-events:
			if !emit(snap) {
				return
			}
		case <-j.done:
			// Drain any buffered frames, then emit the terminal snapshot.
			for {
				select {
				case snap := <-events:
					if !emit(snap) {
						return
					}
				default:
					emit(j.snapshot())
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := api.Stats{
		SchemaVersion: api.SchemaVersion,
		Scheduler:     experiment.SchedulerStatsToAPI(experiment.SchedulerStats()),
		QueueCapacity: s.opts.QueueDepth,
		Workers:       s.opts.Workers,
		Draining:      s.draining.Load(),
	}
	s.mu.Lock()
	stats.QueueDepth = s.queued
	for _, j := range s.jobs {
		switch j.snapshot().State {
		case api.JobQueued:
			stats.Jobs.Queued++
		case api.JobRunning:
			stats.Jobs.Running++
		case api.JobDone:
			stats.Jobs.Done++
		case api.JobFailed:
			stats.Jobs.Failed++
		case api.JobCancelled:
			stats.Jobs.Cancelled++
		}
	}
	s.mu.Unlock()
	stats.Telemetry = s.metrics.Values()
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleLiveness answers /healthz: the process is alive and serving —
// true for as long as the listener exists, drain included (a draining
// daemon must NOT be restarted; it is finishing accepted work).
func (s *Server) handleLiveness(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers /readyz: whether the daemon accepts new jobs. It
// flips to 503 the moment drain begins — before in-flight jobs finish —
// so load balancers stop routing submissions while results stay
// fetchable.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// Drain stops admissions and waits for every in-flight job to reach a
// terminal state, or for ctx to expire. Queued jobs still execute — a
// drain loses no accepted work — and status endpoints keep serving, so
// clients can collect results while the daemon winds down.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	s.log.Info("draining: admissions closed, waiting for in-flight jobs")
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}
