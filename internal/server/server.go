// Package server implements rmserved: the long-lived HTTP daemon that
// turns the shared run scheduler (internal/experiment) into a
// multi-tenant simulation service. Jobs submitted as api wire specs flow
// through ScheduledRunContext / SweepSeedsContext, so identical
// submissions dedup via single-flight and the content-addressed disk
// cache exactly as batch experiments do; the serving layer adds the
// production behaviors batch mode never needed — a bounded queue with
// 429 backpressure, per-job cancellation, SSE progress streams,
// request-scoped structured logging, and graceful drain.
//
// Endpoints (all under /v1, JSON in and out, errors in a uniform
// {"error":{code,message}} envelope):
//
//	POST   /v1/runs             submit one simulation        → api.Job
//	POST   /v1/sweeps           submit one figure sweep      → api.Job
//	GET    /v1/jobs             list jobs, newest last       → []api.Job
//	                            (?limit=/?after= pages       → api.JobPage)
//	GET    /v1/jobs/{id}        job status + result          → api.Job
//	DELETE /v1/jobs/{id}        cancel a queued/running job  → api.Job
//	GET    /v1/jobs/{id}/events SSE stream of job snapshots
//	GET    /v1/stats            scheduler + queue + telemetry → api.Stats
//	GET    /v1/metrics          Prometheus text exposition
//	GET    /v1/healthz          liveness (200 "ok", 503 when draining)
//
// Live simulation sessions (see internal/session) stream a running
// simulation's state as snapshot + diff SSE frames:
//
//	POST   /v1/sessions              start a live session    → api.Session
//	GET    /v1/sessions              list sessions           → []api.Session
//	GET    /v1/sessions/{id}         session status          → api.Session
//	GET    /v1/sessions/{id}/state   latest snapshot         → api.SessionState
//	POST   /v1/sessions/{id}/pause   gate the simulation     → api.Session
//	POST   /v1/sessions/{id}/resume  release the gate        → api.Session
//	DELETE /v1/sessions/{id}         stop the session        → api.Session
//	GET    /v1/sessions/{id}/stream  SSE snapshot/diff stream
//
// Plain operational endpoints (outside the versioned API, no JSON):
//
//	GET /healthz        liveness: 200 while the process serves at all
//	GET /readyz         readiness: 503 the instant drain begins
//	GET /debug/pprof/*  runtime profiling (only with Options.EnablePprof)
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// Options configures a Server. The zero value serves with NumCPU
// workers, a 64-deep queue, and no persistent cache.
type Options struct {
	// Workers bounds concurrently executing jobs; ≤0 means NumCPU.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// are rejected with 429. ≤0 means 64.
	QueueDepth int
	// Parallelism is handed to the run scheduler per sweep (simulations
	// per sweep job); ≤0 means NumCPU.
	Parallelism int
	// CacheDir, when set, opens a persistent content-addressed run cache
	// and installs it on the shared scheduler. Unset with DataDir set, it
	// defaults to DataDir/cache so results survive restarts alongside the
	// journal.
	CacheDir string
	// DataDir, when set, enables the durable job journal: accepted jobs
	// are logged to DataDir/journal.wal before they are acknowledged, and
	// a restarting daemon replays the journal — re-enqueueing interrupted
	// work, restoring terminal failures — instead of forgetting it.
	DataDir string
	// JobTimeout bounds each execution attempt of a job; 0 means no
	// deadline. A timed-out attempt fails the job (deadlines lose the
	// same race on every retry).
	JobTimeout time.Duration
	// Retry shapes the backoff between attempts at a transiently failed
	// job. The zero value uses the resil defaults (3 attempts, 100ms base
	// doubling to a 5s cap, ±20% jitter).
	Retry resil.Backoff
	// Logger receives request- and job-scoped structured logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// FS is the filesystem seam behind the journal and the run cache;
	// nil means the real one. Tests inject faults through it.
	FS resil.FS
	// Sleep paces retry backoff; nil means a real context-aware sleep.
	// Tests substitute a virtual sleeper.
	Sleep resil.Sleeper
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be
	// opted into on a daemon that may face untrusted clients.
	EnablePprof bool
	// MaxSessions caps concurrently live simulation sessions (POST
	// /v1/sessions); ≤0 means the session package default (16). Sessions
	// bypass the job queue — each occupies its own goroutine for its
	// whole life, so this cap is their backpressure.
	MaxSessions int
	// Now overrides the wall clock (tests); nil means time.Now.
	Now func() time.Time
}

// Server is the rmserved daemon: an http.Handler plus the job table and
// worker pool behind it.
type Server struct {
	opts Options
	mux  *http.ServeMux
	log  *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for GET /v1/jobs
	queued int      // jobs admitted but not yet holding a worker slot

	slots    chan struct{} // worker-slot semaphore
	draining atomic.Bool
	inflight sync.WaitGroup // every admitted, unfinished job

	metrics  *obs.Metrics
	nextID   atomic.Uint64
	sessions *session.Manager

	journal *journal // nil unless Options.DataDir is set

	// avgRun is an EWMA of job execution time, feeding the Retry-After
	// estimate on 429/503 rejections.
	avgMu  sync.Mutex
	avgRun time.Duration
}

// New builds a Server and installs its routes. When opts.CacheDir is
// set the persistent cache is opened (and created) immediately so a
// misconfigured directory fails at startup, not at the first job.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Sleep == nil {
		opts.Sleep = resil.SleepCtx
	}
	if opts.CacheDir == "" && opts.DataDir != "" {
		// Results must survive restarts for journal replay to serve
		// completed jobs from cache instead of re-simulating them.
		opts.CacheDir = filepath.Join(opts.DataDir, "cache")
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		log:     opts.Logger,
		jobs:    make(map[string]*job),
		slots:   make(chan struct{}, opts.Workers),
		metrics: obs.NewMetrics(),
		sessions: session.NewManager(session.Config{
			MaxSessions: opts.MaxSessions,
			NowMS:       func() int64 { return opts.Now().UnixMilli() },
		}),
	}
	if opts.CacheDir != "" {
		cache, err := experiment.OpenDiskCacheFS(opts.CacheDir, opts.FS)
		if err != nil {
			return nil, err
		}
		cache.OnCorrupt = func(string) { s.metrics.Inc("obs_disk_cache_corrupt_total") }
		experiment.SetDiskCache(cache)
	}
	// The run scheduler is process-global, so its wall-clock observer is
	// too; the most recently constructed Server owns it (matching how
	// SetDiskCache already behaves for the cache).
	experiment.SetWallObserver(s.metrics)
	s.routes()
	if opts.DataDir != "" {
		if err := s.restoreJournal(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restoreJournal opens (and replays) the durable job journal. Jobs that
// finished as failed or cancelled are restored as terminal records; all
// other journaled jobs — interrupted, queued, or done — are re-enqueued
// through the normal worker pool. Done jobs converge instantly: their
// fingerprint hits the persistent run cache, so the replayed result is
// byte-identical to the one computed before the crash.
func (s *Server) restoreJournal() error {
	jl, recs, err := openJournal(s.opts.DataDir, s.opts.FS)
	if err != nil {
		return err
	}
	s.journal = jl
	jobs, maxSeq := foldRecords(recs)
	s.nextID.Store(maxSeq)
	for _, rj := range jobs {
		if rj.kind != "run" && rj.kind != "sweep" {
			s.log.Warn("journal replay: skipping unknown job kind", "job", rj.id, "kind", rj.kind)
			continue
		}
		j := s.rebuildJob(rj)
		s.counter("rmserved_journal_replayed_total", telemetry.Label{Key: "state", Value: rj.state})
		if rj.state == api.JobFailed || rj.state == api.JobCancelled {
			// The failure is sticky: replaying it would turn one logical
			// job into two different answers across a restart.
			continue
		}
		s.log.Info("journal replay: re-enqueueing job", "job", j.id, "kind", j.kind, "journaled_state", rj.state)
		s.mu.Lock()
		s.queued++
		s.metrics.SetQueueDepth(s.queued)
		s.mu.Unlock()
		s.enqueue(j)
	}
	return nil
}

// rebuildJob reconstructs one journaled job. Terminal failures keep
// their journaled outcome and are registered directly; every other job
// comes back as a fresh queued shell (attempt count restarts — the wire
// Attempts field describes the current daemon's executions).
func (s *Server) rebuildJob(rj *replayedJob) *job {
	ctx, cancel := context.WithCancel(obs.WithJobID(context.Background(), rj.id))
	j := &job{
		id:          rj.id,
		kind:        rj.kind,
		run:         rj.run,
		sweep:       rj.sweep,
		fingerprint: rj.fingerprint,
		state:       api.JobQueued,
		created:     time.UnixMilli(rj.createdMS),
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	if rj.state == api.JobFailed || rj.state == api.JobCancelled {
		j.state = rj.state
		j.errMsg = rj.errMsg
		j.attempts = rj.attempts
		if rj.startedMS != 0 {
			j.started = time.UnixMilli(rj.startedMS)
		}
		if rj.finishedMS != 0 {
			j.finished = time.UnixMilli(rj.finishedMS)
		}
		close(j.done)
		s.mu.Lock()
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
	}
	return j
}

func (s *Server) now() time.Time { return s.opts.Now() }

// Metrics exposes the server's wall-clock metric surface (tests, and
// embedding binaries that want to record their own serving metrics).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// counter bumps a named server metric.
func (s *Server) counter(name string, labels ...telemetry.Label) {
	s.metrics.Inc(name, labels...)
}

func (s *Server) routes() {
	for route, h := range map[string]http.HandlerFunc{
		"POST /v1/runs":                 s.handleSubmitRun,
		"POST /v1/sweeps":               s.handleSubmitSweep,
		"GET /v1/jobs":                  s.handleListJobs,
		"GET /v1/jobs/{id}":             s.handleGetJob,
		"DELETE /v1/jobs/{id}":          s.handleCancelJob,
		"GET /v1/jobs/{id}/events":      s.handleJobEvents,
		"POST /v1/sessions":             s.handleCreateSession,
		"GET /v1/sessions":              s.handleListSessions,
		"GET /v1/sessions/{id}":         s.handleGetSession,
		"GET /v1/sessions/{id}/state":   s.handleSessionState,
		"POST /v1/sessions/{id}/pause":  s.handlePauseSession,
		"POST /v1/sessions/{id}/resume": s.handleResumeSession,
		"DELETE /v1/sessions/{id}":      s.handleStopSession,
		"GET /v1/sessions/{id}/stream":  s.handleSessionStream,
		"GET /v1/stats":                 s.handleStats,
		"GET /v1/metrics":               s.handleMetrics,
	} {
		s.mux.HandleFunc(route, s.logged(route, h))
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz", s.handleLiveness)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.opts.EnablePprof {
		// pprof's index dispatches /debug/pprof/{heap,goroutine,...}
		// itself; symbol accepts POST, so these patterns carry no method.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// ServeHTTP makes the Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// logged wraps a handler with request-scoped observability: every
// request gets a correlation ID (the client's X-Request-Id when it sent
// one, a fresh one otherwise) threaded through the request context and
// echoed on the response, completion is logged with status and duration,
// and the per-route latency histogram is fed. route is the mux pattern,
// so metric labels stay bounded no matter what path IDs clients use.
func (s *Server) logged(route string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		rw.Header().Set(obs.RequestIDHeader, id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		log := s.log.With("req", id, "method", r.Method, "path", r.URL.Path)
		log.Debug("request start")
		h(rw, r)
		dur := s.now().Sub(start)
		s.metrics.ObserveHTTP(route, rw.status, dur)
		log.Info("request done", "status", rw.status, "dur_ms", dur.Milliseconds())
	}
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE streaming works through
// the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorEnvelope{Error: api.Error{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// admit reserves a queue position for a new job, enforcing drain and
// backpressure. On success the caller owns one inflight stake.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; not accepting new jobs")
		s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "draining"})
		return false
	}
	s.mu.Lock()
	if s.queued >= s.opts.QueueDepth {
		s.mu.Unlock()
		w.Header().Set(api.RetryAfterHeader, strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, api.CodeQueueFull, "job queue full (%d waiting); retry later", s.opts.QueueDepth)
		s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "queue_full"})
		return false
	}
	s.queued++
	s.metrics.SetQueueDepth(s.queued)
	s.mu.Unlock()
	return true
}

// dequeued records one job leaving the waiting queue (for a worker slot
// or for cancellation).
func (s *Server) dequeued() {
	s.mu.Lock()
	s.queued--
	s.metrics.SetQueueDepth(s.queued)
	s.mu.Unlock()
}

// observeRun feeds one job execution duration into the EWMA behind the
// Retry-After estimate.
func (s *Server) observeRun(d time.Duration) {
	s.avgMu.Lock()
	if s.avgRun == 0 {
		s.avgRun = d
	} else {
		s.avgRun = (s.avgRun*4 + d) / 5
	}
	s.avgMu.Unlock()
}

// retryAfter renders the server's current backoff hint in seconds.
func (s *Server) retryAfter() int {
	s.avgMu.Lock()
	avg := s.avgRun
	s.avgMu.Unlock()
	s.mu.Lock()
	queued := s.queued
	s.mu.Unlock()
	return retryAfterSeconds(queued, s.opts.Workers, avg)
}

// retryAfterSeconds estimates how long until the queue has room again:
// the backlog's expected drain time at the observed per-job duration,
// spread across the worker pool, clamped to [1s, 60s]. With no duration
// signal yet, a flat 2s keeps clients from hammering a cold daemon.
func retryAfterSeconds(queued, workers int, avgRun time.Duration) int {
	if workers <= 0 {
		workers = 1
	}
	if avgRun <= 0 {
		return 2
	}
	wait := time.Duration(queued+1) * avgRun / time.Duration(workers)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// journalMark appends a start or finish record for j. Best effort by
// design: the submit record is the durability contract (the job exists),
// while a lost mark merely re-runs idempotent work after a crash.
func (s *Server) journalMark(j *job, typ string) {
	if s.journal == nil {
		return
	}
	snap := j.snapshot()
	rec := journalRecord{Type: typ, Job: j.id, MS: s.now().UnixMilli()}
	if typ == "finish" {
		rec.State = snap.State
		rec.Error = snap.Error
		rec.Attempts = snap.Attempts
	}
	if err := s.journal.append(rec); err != nil {
		s.counter("rmserved_journal_errors_total", telemetry.Label{Key: "type", Value: typ})
		s.log.Warn("journal append failed", "job", j.id, "type", typ, "error", err.Error())
	}
}

// journalSubmit durably records an accepted job before the client sees
// the acknowledgement. An error here must abort the submission: a job
// the journal does not know would vanish on restart despite having been
// acknowledged.
func (s *Server) journalSubmit(j *job) error {
	if s.journal == nil {
		return nil
	}
	rec := journalRecord{Type: "submit", Job: j.id, MS: s.now().UnixMilli(), Kind: j.kind, Fingerprint: j.fingerprint}
	switch j.kind {
	case "run":
		rec.Run = &j.run
	case "sweep":
		rec.Sweep = &j.sweep
	}
	return s.journal.append(rec)
}

// rejectJournal unwinds a submission whose journal write failed: the
// queue slot is released and the client told to retry once the disk
// recovers — resubmitting the identical spec is idempotent.
func (s *Server) rejectJournal(w http.ResponseWriter, j *job, err error) {
	s.dequeued()
	s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "journal"})
	s.counter("rmserved_journal_errors_total", telemetry.Label{Key: "type", Value: "submit"})
	s.log.Error("journal submit failed; rejecting job", "job", j.id, "error", err.Error())
	w.Header().Set(api.RetryAfterHeader, strconv.Itoa(s.retryAfter()))
	writeError(w, http.StatusServiceUnavailable, api.CodeJournal, "journal write failed; job not accepted, retry later: %v", err)
}

// enqueue registers the job and hands it to the worker pool.
func (s *Server) enqueue(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.counter("rmserved_jobs_submitted_total", telemetry.Label{Key: "kind", Value: j.kind})
	s.inflight.Add(1)
	s.metrics.AddInFlight(1)
	go func() {
		defer s.inflight.Done()
		defer s.metrics.AddInFlight(-1)
		// Hold a worker slot for the whole execution; cancellation while
		// queued skips the wait so a full pool cannot delay a DELETE.
		select {
		case s.slots <- struct{}{}:
		case <-j.ctx.Done():
			s.dequeued()
			j.transition(api.JobCancelled, func(j *job) {
				j.errMsg = j.ctx.Err().Error()
				j.finished = s.now()
			})
			s.counter("rmserved_jobs_finished_total", telemetry.Label{Key: "state", Value: api.JobCancelled})
			return
		}
		s.dequeued()
		defer func() { <-s.slots }()
		s.execute(j)
		s.counter("rmserved_jobs_finished_total", telemetry.Label{Key: "state", Value: j.snapshot().State})
	}()
}

// newJob allocates a job shell in the queued state. The job context
// carries both correlation IDs, so everything executed on the job's
// behalf — scheduler cells, remote delegation — can be tied back to the
// submission, and the accept log line links request to job.
func (s *Server) newJob(r *http.Request, kind string) *job {
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	ctx := obs.WithJobID(context.Background(), id)
	if req := obs.RequestID(r.Context()); req != "" {
		ctx = obs.WithRequestID(ctx, req)
	}
	ctx, cancel := context.WithCancel(ctx)
	s.log.Info("job accepted", append(obs.ContextAttrs(ctx), "kind", kind)...)
	return &job{
		id:      id,
		kind:    kind,
		state:   api.JobQueued,
		created: s.now(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding run request: %v", err)
		return
	}
	// Validate the whole spec here — including materialization — so a bad
	// request fails synchronously with every field error, not as a failed
	// job minutes later.
	cfg, alg, setups, err := experiment.MaterializeRun(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if !s.admit(w) {
		return
	}
	j := s.newJob(r, "run")
	j.run = req
	// The fingerprint computed here is the same content address the
	// scheduler dedups on, so a client resubmitting after a crash can
	// find this job (or its twin) by fingerprint.
	j.fingerprint = experiment.RunKey(cfg, alg, setups)
	if err := s.journalSubmit(j); err != nil {
		s.rejectJournal(w, j, err)
		return
	}
	s.enqueue(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding sweep request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if !s.admit(w) {
		return
	}
	j := s.newJob(r, "sweep")
	j.sweep = req
	if err := s.journalSubmit(j); err != nil {
		s.rejectJournal(w, j, err)
		return
	}
	s.enqueue(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// lookup fetches a job by path id, writing the 404 envelope on miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	// ?fingerprint= narrows the list to jobs for one content-addressed
	// run — how a client rediscovers its work on a restarted daemon.
	q := r.URL.Query()
	fp := q.Get("fingerprint")
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]api.Job, 0, len(jobs))
	for _, j := range jobs {
		if fp != "" && j.fingerprint != fp {
			continue
		}
		out = append(out, j.snapshot())
	}
	// ?limit=/?after= switch the response to the paged JobPage shape; the
	// parameterless call keeps returning the bare array for one
	// deprecation window (DESIGN.md §6).
	if !q.Has("limit") && !q.Has("after") {
		writeJSON(w, http.StatusOK, out)
		return
	}
	page, err := pageJobs(out, q.Get("limit"), q.Get("after"))
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// pageJobs slices the (already filtered) submission-ordered job list
// into one page: entries strictly after the `after` cursor, at most
// `limit` of them. NextAfter carries the cursor of the following page,
// empty when the page reaches the end.
func pageJobs(jobs []api.Job, limitStr, after string) (api.JobPage, error) {
	start := 0
	if after != "" {
		found := false
		for i, j := range jobs {
			if j.ID == after {
				start, found = i+1, true
				break
			}
		}
		if !found {
			return api.JobPage{}, fmt.Errorf("unknown after cursor %q", after)
		}
	}
	end := len(jobs)
	if limitStr != "" {
		limit, err := strconv.Atoi(limitStr)
		if err != nil || limit <= 0 {
			return api.JobPage{}, fmt.Errorf("limit must be a positive integer, got %q", limitStr)
		}
		if start+limit < end {
			end = start + limit
		}
	}
	page := api.JobPage{SchemaVersion: api.SchemaVersion, Jobs: jobs[start:end]}
	if page.Jobs == nil {
		page.Jobs = []api.Job{}
	}
	if end < len(jobs) && end > start {
		page.NextAfter = jobs[end-1].ID
	}
	return page, nil
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if api.TerminalState(j.snapshot().State) {
		writeError(w, http.StatusConflict, api.CodeConflict, "job %s already %s", j.id, j.snapshot().State)
		return
	}
	s.log.Info("job cancel requested", "job", j.id)
	j.cancel()
	// The queued-state fast path and the scheduler's context propagation
	// both resolve promptly; wait for the terminal transition so the
	// response carries the final state.
	<-j.done
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobEvents streams job snapshots as Server-Sent Events until the
// job reaches a terminal state or the client disconnects. Every stream
// opens with the current snapshot, so subscribing to a finished job
// yields exactly one frame.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: a resumed stream may suppress its initial
	// frame, and a client blocked on response headers can't be said to
	// have reconnected.
	fl.Flush()

	// Last-Event-ID (the standard SSE resume header) carries the sequence
	// number of the last frame a reconnecting client saw; frames at or
	// below it are suppressed so a resumed stream never duplicates state.
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		lastID, _ = strconv.ParseUint(v, 10, 64)
	}

	events, unsub := j.subscribe()
	defer unsub()
	s.metrics.AddSSESubscribers(1)
	defer s.metrics.AddSSESubscribers(-1)

	// Frames go through the shared api.Event envelope. Job frames stay
	// UNNAMED (no `event:` line, bare Job payload) for one deprecation
	// window — pre-envelope clients parse only id:/data: lines, and an
	// `event: snapshot`-style name would be invisible to them but a
	// changed payload shape would not (DESIGN.md §6).
	emit := func(seq uint64, snap api.Job) bool {
		ev := api.Event{Type: api.EventJob, Seq: seq, Job: &snap}
		if err := ev.WriteSSE(w); err != nil {
			return false
		}
		fl.Flush()
		return !api.TerminalState(snap.State)
	}
	seq, snap := j.current()
	if seq > lastID || api.TerminalState(snap.State) {
		// Terminal frames re-emit even when already seen: a stream must
		// always end on one, and the duplicate is idempotent.
		if !emit(seq, snap) {
			return
		}
	}
	for {
		select {
		case ev := <-events:
			if !emit(ev.seq, ev.snap) {
				return
			}
		case <-j.done:
			// Drain any buffered frames, then emit the terminal snapshot.
			for {
				select {
				case ev := <-events:
					if !emit(ev.seq, ev.snap) {
						return
					}
				default:
					seq, snap := j.current()
					emit(seq, snap)
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := api.Stats{
		SchemaVersion: api.SchemaVersion,
		Scheduler:     experiment.SchedulerStatsToAPI(experiment.SchedulerStats()),
		QueueCapacity: s.opts.QueueDepth,
		Workers:       s.opts.Workers,
		Draining:      s.draining.Load(),
	}
	s.mu.Lock()
	stats.QueueDepth = s.queued
	for _, j := range s.jobs {
		switch j.snapshot().State {
		case api.JobQueued:
			stats.Jobs.Queued++
		case api.JobRunning, api.JobRetrying:
			// A retrying job still holds its worker slot; for capacity
			// accounting it is running.
			stats.Jobs.Running++
		case api.JobDone:
			stats.Jobs.Done++
		case api.JobFailed:
			stats.Jobs.Failed++
		case api.JobCancelled:
			stats.Jobs.Cancelled++
		}
	}
	s.mu.Unlock()
	sessStats := s.sessions.Stats()
	stats.Sessions = &sessStats
	stats.Telemetry = s.metrics.Values()
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleLiveness answers /healthz: the process is alive and serving —
// true for as long as the listener exists, drain included (a draining
// daemon must NOT be restarted; it is finishing accepted work).
func (s *Server) handleLiveness(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers /readyz: whether the daemon accepts new jobs. It
// flips to 503 the moment drain begins — before in-flight jobs finish —
// so load balancers stop routing submissions while results stay
// fetchable.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// Drain stops admissions and waits for every in-flight job to reach a
// terminal state, or for ctx to expire. Queued jobs still execute — a
// drain loses no accepted work — and status endpoints keep serving, so
// clients can collect results while the daemon winds down. Live
// sessions are the exception: a paced session could stream forever, so
// drain stops them (their streams end on a stopped terminal snapshot)
// rather than waiting them out.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	s.log.Info("draining: admissions closed, stopping sessions, waiting for in-flight jobs")
	if err := s.sessions.DrainAndStop(ctx); err != nil {
		return fmt.Errorf("server: drain interrupted: %w", err)
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}
