package server_test

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/server"
)

// newTestServerURL is newTestServer plus the raw base URL, for tests
// that need to speak HTTP below the client's surface.
func newTestServerURL(t *testing.T, opts server.Options) (*server.Server, *client.Client, string) {
	t.Helper()
	srv, cl := newTestServer(t, opts)
	// newTestServer built the client against an httptest server; recover
	// its base from a fresh one so raw requests hit the same Server.
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, cl, ts.URL
}

// sessReq builds a session request over a constant-rate pattern.
func sessReq(periods int) api.SessionRequest {
	seed := uint64(7)
	return api.SessionRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     api.AlgPredictive,
		Seed:          &seed,
		Task: api.TaskSpec{
			Pattern: api.Pattern{Kind: api.PatternConstant, Value: 500, Periods: periods},
		},
	}
}

// waitForSession polls until the session reaches a terminal state.
func waitForSession(t *testing.T, cl *client.Client, id string) api.Session {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s, err := cl.Session(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if api.TerminalSessionState(s.State) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session %s never terminated", id)
	return api.Session{}
}

// rawStream opens the stream endpoint directly and folds frames until
// either maxStateFrames state-bearing frames arrived (then kills the
// connection) or a terminal stamp arrived. It returns the folded state,
// the last event id, and whether the stream reached a terminal frame.
func rawStream(t *testing.T, base, id, lastEventID string, st *api.SessionState, maxStateFrames int) (string, bool) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sessions/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	var frameID, name string
	var data []byte
	states := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			frameID = strings.TrimPrefix(line, "id: ")
			continue
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			continue
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
			continue
		case line != "":
			continue
		}
		if data == nil {
			continue
		}
		ev, perr := api.ParseSSE(name, data)
		if perr != nil {
			t.Fatalf("decoding frame %s %q: %v", name, data, perr)
		}
		name, data = "", nil
		switch ev.Type {
		case api.EventSnapshot:
			*st = ev.Snapshot.Clone()
		case api.EventDiff:
			st.Apply(*ev.Diff)
		default:
			continue // heartbeat: no id, no state
		}
		if frameID != "" {
			lastEventID = frameID
		}
		states++
		if ev.Session != nil && api.TerminalSessionState(ev.Session.State) {
			return lastEventID, true
		}
		if states >= maxStateFrames {
			return lastEventID, false // simulate a dropped connection
		}
	}
	t.Fatalf("stream for %s ended without a terminal frame (scan err %v)", id, sc.Err())
	return lastEventID, false
}

// TestSessionEndToEndSmoke is the e2e acceptance path: start one paced
// session, attach 50 subscribers at staggered times, kill one raw
// subscriber mid-stream and resume it via Last-Event-ID, and require
// every fold — early joiner, late joiner, and the killed-and-resumed
// one — to land exactly on the session's final state.
func TestSessionEndToEndSmoke(t *testing.T) {
	_, cl, base := newTestServerURL(t, server.Options{})

	req := sessReq(300)
	req.SampleMS = 500
	req.MaxRateHz = 300
	sess, err := cl.CreateSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sess.State != api.SessionRunning || sess.SampleMS != 500 {
		t.Fatalf("created session %+v", sess)
	}

	const subscribers = 50
	var wg sync.WaitGroup
	folds := make([]api.SessionState, subscribers)
	stamps := make([]api.Session, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 4 * time.Millisecond) // join before, during, and after the stream
			st, stamp, err := cl.StreamSession(context.Background(), sess.ID, nil)
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
				return
			}
			folds[i], stamps[i] = st, stamp
		}(i)
	}

	// The killed subscriber: fold three state frames, drop the
	// connection, then resume from Last-Event-ID until terminal.
	var killed api.SessionState
	lastID, done := rawStream(t, base, sess.ID, "", &killed, 3)
	if done {
		t.Fatalf("session finished before the kill point (last id %s)", lastID)
	}
	if _, done = rawStream(t, base, sess.ID, lastID, &killed, 1<<30); !done {
		t.Fatal("resumed stream did not reach a terminal frame")
	}

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	final, err := cl.SessionState(context.Background(), sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Equal(final) {
		t.Errorf("killed-and-resumed fold diverged from final state:\n got %+v\nwant %+v", killed, final)
	}
	for i := range folds {
		if !folds[i].Equal(final) {
			t.Errorf("subscriber %d fold diverged from final state", i)
		}
		if stamps[i].State != api.SessionDone {
			t.Errorf("subscriber %d terminal stamp %q, want done", i, stamps[i].State)
		}
	}
	if final.Metrics.Completed != 300 {
		t.Errorf("final state completed %d periods, want 300", final.Metrics.Completed)
	}

	info := waitForSession(t, cl, sess.ID)
	if info.State != api.SessionDone || info.FinishedMS == 0 {
		t.Errorf("terminal session view %+v", info)
	}
	list, err := cl.Sessions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sess.ID {
		t.Errorf("session list %+v", list)
	}
}

// TestSessionLifecycleAndErrors pins the control-surface contract:
// pause/resume round-trip, conflicts on terminal sessions, 404s, and
// stats exposure.
func TestSessionLifecycleAndErrors(t *testing.T) {
	srv, cl := newTestServer(t, server.Options{})
	_ = srv

	// A paced session stays alive long enough to pause.
	req := sessReq(5000)
	req.MaxRateHz = 100
	sess, err := cl.CreateSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := cl.PauseSession(context.Background(), sess.ID); err != nil || s.State != api.SessionPaused {
		t.Fatalf("pause: %+v, %v", s, err)
	}
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions == nil || stats.Sessions.Paused != 1 {
		t.Errorf("stats.Sessions %+v, want one paused", stats.Sessions)
	}
	if s, err := cl.ResumeSession(context.Background(), sess.ID); err != nil || s.State != api.SessionRunning {
		t.Fatalf("resume: %+v, %v", s, err)
	}
	if s, err := cl.StopSession(context.Background(), sess.ID); err != nil || s.State != api.SessionStopped {
		t.Fatalf("stop: %+v, %v", s, err)
	}

	// Terminal sessions conflict on every control verb.
	wantConflict := func(what string, err error) {
		t.Helper()
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != api.CodeConflict {
			t.Errorf("%s on stopped session: %v, want 409 %s", what, err, api.CodeConflict)
		}
	}
	_, err = cl.PauseSession(context.Background(), sess.ID)
	wantConflict("pause", err)
	_, err = cl.ResumeSession(context.Background(), sess.ID)
	wantConflict("resume", err)
	_, err = cl.StopSession(context.Background(), sess.ID)
	wantConflict("stop", err)

	// The final state stays readable after the session ends.
	if _, err := cl.SessionState(context.Background(), sess.ID); err != nil {
		t.Errorf("state after stop: %v", err)
	}

	// Unknown sessions are 404s.
	_, err = cl.Session(context.Background(), "sess-999")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != api.CodeNotFound {
		t.Errorf("unknown session: %v, want 404 %s", err, api.CodeNotFound)
	}

	// Invalid session requests are 400s.
	bad := sessReq(10)
	bad.SampleMS = -1
	if _, err := cl.CreateSession(context.Background(), bad); err == nil {
		t.Error("negative sample_ms accepted")
	}
}

// TestDrainStopsSessions proves Drain's session half: live sessions are
// stopped (not abandoned) and new ones are refused with 503 draining.
func TestDrainStopsSessions(t *testing.T) {
	srv, cl := newTestServer(t, server.Options{})

	req := sessReq(1_000_000) // paced: would run ~3 hours if not drained
	req.MaxRateHz = 100
	sess, err := cl.CreateSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s, err := cl.Session(context.Background(), sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s.State != api.SessionStopped {
		t.Errorf("session state after drain %q, want stopped", s.State)
	}

	_, err = cl.CreateSession(context.Background(), sessReq(10))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeDraining {
		t.Errorf("create during drain: %v, want 503 %s", err, api.CodeDraining)
	}
}

// TestSessionCap pins the backpressure contract: live sessions beyond
// MaxSessions are refused with 429 queue_full.
func TestSessionCap(t *testing.T) {
	_, cl := newTestServer(t, server.Options{MaxSessions: 1})

	req := sessReq(5000)
	req.MaxRateHz = 100
	if _, err := cl.CreateSession(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	_, err := cl.CreateSession(context.Background(), req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != api.CodeQueueFull {
		t.Errorf("second session: %v, want 429 %s", err, api.CodeQueueFull)
	}
}

// TestJobsPagination pins the paged listing against the legacy bare
// array: same order, cursor chaining, and 400s on bad parameters.
func TestJobsPagination(t *testing.T) {
	_, cl, base := newTestServerURL(t, server.Options{Workers: 1})

	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		j, err := cl.SubmitRun(context.Background(), runReq(uint64(i+1), []int{500, 600}))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		if _, err := cl.Wait(context.Background(), j.ID); err != nil {
			t.Fatal(err)
		}
	}

	// The bare call still returns the legacy array (deprecation window).
	all, err := cl.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("bare list has %d jobs, want 5", len(all))
	}

	// Page through with limit 2 and chain cursors.
	var paged []string
	after := ""
	pages := 0
	for {
		page, err := cl.JobsPage(context.Background(), 2, after)
		if err != nil {
			t.Fatal(err)
		}
		if page.SchemaVersion != api.SchemaVersion {
			t.Fatalf("page schema_version %d", page.SchemaVersion)
		}
		for _, j := range page.Jobs {
			paged = append(paged, j.ID)
		}
		pages++
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if pages != 3 || len(paged) != 5 {
		t.Fatalf("paged through %d pages, %d jobs; want 3 pages, 5 jobs", pages, len(paged))
	}
	for i := range all {
		if paged[i] != all[i].ID {
			t.Errorf("page order diverges at %d: %s vs %s", i, paged[i], all[i].ID)
		}
	}

	// An over-large limit returns the whole tail in one page.
	page, err := cl.JobsPage(context.Background(), 100, ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.NextAfter != "" {
		t.Errorf("tail page %+v, want 2 jobs and no cursor", page)
	}

	// Bad parameters are 400s.
	for _, q := range []string{"?limit=0", "?limit=nope", "?limit=2&after=job-does-not-exist"} {
		resp, err := http.Get(base + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s → %d, want 400", q, resp.StatusCode)
		}
	}
}
