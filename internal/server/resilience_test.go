package server_test

// Service-layer resilience: the durable job journal across restarts,
// panic isolation, retry/timeout behavior, backpressure hints, and the
// SSE resume protocol — all driven deterministically through the resil
// fault harness and the experiment sim hook.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/resil"
	"repro/internal/server"
)

// newFaultServer is newTestServer returning the raw base URL too, for
// tests that must inspect headers or speak SSE by hand.
func newFaultServer(t *testing.T, opts server.Options) (*server.Server, string, *client.Client) {
	t.Helper()
	srv, _ := newTestServer(t, opts)
	// newTestServer registered its own httptest server; expose another
	// handle onto the same Server for raw HTTP.
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL, client.NewWithHTTPClient(ts.URL, ts.Client())
}

// seedHook installs a sim hook that fires only for cfg.Seed == seed,
// keeping cross-test and background jobs unaffected.
func seedHook(t *testing.T, seed uint64, fn func(calls int) error) *int {
	t.Helper()
	calls := 0
	experiment.SetSimHook(func(cfg core.Config, alg core.Algorithm) error {
		if cfg.Seed == seed {
			calls++
			return fn(calls)
		}
		return nil
	})
	t.Cleanup(func() { experiment.SetSimHook(nil) })
	return &calls
}

// TestJournalWriteFailureAtSubmit: when the submit record cannot be made
// durable, the job is refused with 503 + Retry-After and leaves no trace
// — a restart on the same data dir knows nothing about it.
func TestJournalWriteFailureAtSubmit(t *testing.T) {
	dir := t.TempDir()
	inj := resil.NewInjector(nil).Inject(resil.Rule{
		Op: resil.OpWrite, Path: "journal.wal", Err: fmt.Errorf("injected: journal disk full"),
	})
	_, base, _ := newFaultServer(t, server.Options{DataDir: dir, FS: inj})

	resp, err := http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(mustJSON(t, runReq(0x5e4001, []int{500, 700}))))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), api.CodeJournal) {
		t.Errorf("error body missing code %q: %s", api.CodeJournal, body)
	}
	if ra := resp.Header.Get(api.RetryAfterHeader); ra == "" {
		t.Error("503 carries no Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q is not a positive integer of seconds", ra)
	}

	// No partial record replays: a fresh daemon on the same dir has no
	// jobs, and its queue accounting starts clean (the failed submission
	// released its slot).
	_, cl2 := newTestServer(t, server.Options{DataDir: dir})
	jobs, err := cl2.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("rejected submission left %d journaled jobs: %+v", len(jobs), jobs)
	}
	st, err := cl2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after rejected submission, want 0", st.QueueDepth)
	}
}

// TestRestartReplayConvergesFromCache: a done job replayed on a fresh
// daemon (same data dir, in-process memo dropped — the crash analogue)
// converges to a byte-identical result served from the persistent cache,
// findable by fingerprint.
func TestRestartReplayConvergesFromCache(t *testing.T) {
	dir := t.TempDir()
	_, cl1 := newTestServer(t, server.Options{DataDir: dir})
	req := runReq(0x5e4002, []int{500, 1500, 2500})

	j, err := cl1.SubmitRun(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if j.Fingerprint == "" {
		t.Fatal("accepted run job carries no fingerprint")
	}
	fp := j.Fingerprint
	j, err = cl1.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobDone || j.Run == nil {
		t.Fatalf("job did not finish: %+v", j)
	}
	want := mustJSON(t, *j.Run)
	statsBefore := experiment.SchedulerStats()

	// "Crash": the old daemon is abandoned, the in-process run memo is
	// dropped, and a new daemon replays the same journal.
	experiment.ResetSweepCache()
	_, cl2 := newTestServer(t, server.Options{DataDir: dir})

	jobs, err := cl2.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var replayed *api.Job
	for i := range jobs {
		if jobs[i].Fingerprint == fp {
			replayed = &jobs[i]
		}
	}
	if replayed == nil {
		t.Fatalf("replayed daemon lost the job; journal replay found %+v", jobs)
	}
	got, err := cl2.Wait(context.Background(), replayed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobDone || got.Run == nil {
		t.Fatalf("replayed job did not converge: %+v", got)
	}
	if mustJSON(t, *got.Run) != want {
		t.Errorf("replayed result drifted from the pre-crash result:\n got %s\nwant %s", mustJSON(t, *got.Run), want)
	}
	delta := experiment.SchedulerStats()
	if sim := delta.Simulated - statsBefore.Simulated; sim != 0 {
		t.Errorf("replay re-simulated %d cells; the persistent cache should have served the result", sim)
	}
}

// TestRestartRestoresTerminalFailure: a deterministically failed job is
// restored as a terminal record on restart — replay must not launder a
// sticky failure into a re-execution.
func TestRestartRestoresTerminalFailure(t *testing.T) {
	dir := t.TempDir()
	calls := seedHook(t, 0x5e4003, func(int) error {
		return fmt.Errorf("deterministic model divergence")
	})
	_, cl1 := newTestServer(t, server.Options{DataDir: dir})
	j, err := cl1.SubmitRun(context.Background(), runReq(0x5e4003, []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl1.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobFailed || j.Attempts != 1 {
		t.Fatalf("want a failed single-attempt job, got %+v", j)
	}

	_, cl2 := newTestServer(t, server.Options{DataDir: dir})
	got, err := cl2.Job(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobFailed {
		t.Fatalf("restored job state %q, want failed", got.State)
	}
	if !strings.Contains(got.Error, "deterministic model divergence") {
		t.Errorf("restored job lost its error: %q", got.Error)
	}
	if *calls != 1 {
		t.Errorf("replay re-executed a deterministic failure: %d sim calls, want 1", *calls)
	}
}

// TestWorkerPanicFailsOnlyThatJob: an injected worker panic becomes one
// structured job failure; the daemon keeps serving, sibling jobs finish,
// and the panic counter lands in /v1/metrics.
func TestWorkerPanicFailsOnlyThatJob(t *testing.T) {
	seedHook(t, 0x5e4004, func(int) error { panic("injected worker panic") })
	_, base, cl := newFaultServer(t, server.Options{})

	bad, err := cl.SubmitRun(context.Background(), runReq(0x5e4004, []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	good, err := cl.SubmitRun(context.Background(), runReq(0x5e4005, []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	bad, err = cl.Wait(context.Background(), bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bad.State != api.JobFailed || !strings.Contains(bad.Error, "panic") {
		t.Fatalf("panicking job resolved as %q (%q), want failed with a panic error", bad.State, bad.Error)
	}
	if bad.Attempts != 1 {
		t.Errorf("panic was retried: %d attempts, want 1", bad.Attempts)
	}
	good, err = cl.Wait(context.Background(), good.ID)
	if err != nil {
		t.Fatal(err)
	}
	if good.State != api.JobDone {
		t.Fatalf("sibling job died with the panic: %+v", good)
	}

	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "rmserved_job_panics_total 1") {
		t.Errorf("/v1/metrics missing the panic counter:\n%s", text)
	}
}

// TestTransientFailureRetriedToSuccess: a transiently failing job passes
// through the retrying state and succeeds on the second attempt.
func TestTransientFailureRetriedToSuccess(t *testing.T) {
	calls := seedHook(t, 0x5e4006, func(n int) error {
		if n == 1 {
			return resil.Transientf("injected queue race")
		}
		return nil
	})
	_, cl := newTestServer(t, server.Options{
		Retry: resil.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	j, err := cl.SubmitRun(context.Background(), runReq(0x5e4006, []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobDone {
		t.Fatalf("job resolved as %q (%q), want done after retry", j.State, j.Error)
	}
	if j.Attempts != 2 || *calls != 2 {
		t.Errorf("attempts=%d simCalls=%d, want 2 and 2", j.Attempts, *calls)
	}
}

// TestDeterministicErrorNeverRetried: ordinary (unmarked) errors fail
// fast — one attempt, one execution.
func TestDeterministicErrorNeverRetried(t *testing.T) {
	calls := seedHook(t, 0x5e4007, func(int) error {
		return fmt.Errorf("deterministic failure")
	})
	_, cl := newTestServer(t, server.Options{
		Retry: resil.Backoff{Base: time.Millisecond, Attempts: 5},
	})
	j, err := cl.SubmitRun(context.Background(), runReq(0x5e4007, []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobFailed {
		t.Fatalf("job resolved as %q, want failed", j.State)
	}
	if j.Attempts != 1 || *calls != 1 {
		t.Errorf("attempts=%d simCalls=%d, want 1 and 1 (no retry of deterministic errors)", j.Attempts, *calls)
	}
}

// TestTransientRetriesExhaust: a job whose transient failure never heals
// consumes exactly Retry.Attempts executions, then fails.
func TestTransientRetriesExhaust(t *testing.T) {
	calls := seedHook(t, 0x5e4008, func(int) error {
		return resil.Transientf("injected persistent flake")
	})
	_, cl := newTestServer(t, server.Options{
		Retry: resil.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3},
	})
	j, err := cl.SubmitRun(context.Background(), runReq(0x5e4008, []int{500, 700}))
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobFailed || j.Attempts != 3 || *calls != 3 {
		t.Errorf("state=%q attempts=%d simCalls=%d, want failed/3/3", j.State, j.Attempts, *calls)
	}
}

// TestJobTimeoutFailsWithoutRetry: the per-job deadline converts a
// too-slow attempt into a terminal failure — deadlines lose the same
// race every retry, so one attempt is spent.
func TestJobTimeoutFailsWithoutRetry(t *testing.T) {
	_, cl := newTestServer(t, server.Options{JobTimeout: 50 * time.Millisecond})
	j, err := cl.SubmitRun(context.Background(), runReq(0x5e4009, longValues()))
	if err != nil {
		t.Fatal(err)
	}
	j, err = cl.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != api.JobFailed || !strings.Contains(j.Error, "-job-timeout") {
		t.Fatalf("job resolved as %q (%q), want failed with a timeout error", j.State, j.Error)
	}
	if j.Attempts != 1 {
		t.Errorf("timed-out job retried: %d attempts, want 1", j.Attempts)
	}
}

// TestQueueFullRetryAfter: 429 rejections carry a Retry-After derived
// from the queue's drain rate.
func TestQueueFullRetryAfter(t *testing.T) {
	_, base, cl := newFaultServer(t, server.Options{Workers: 1, QueueDepth: 1})
	first, err := cl.SubmitRun(context.Background(), runReq(0x5e400a, longValues()))
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.SubmitRun(context.Background(), runReq(0x5e400b, longValues()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cl.Cancel(context.Background(), first.ID)
		cl.Cancel(context.Background(), second.ID)
	}()

	resp, err := http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(mustJSON(t, runReq(0x5e400c, []int{500}))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get(api.RetryAfterHeader)
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Errorf("Retry-After %q, want an integer in [1,60]", ra)
	}
}

// TestDrainPersistsJournal: a graceful drain journals every accepted
// job's completion — a restart restores them terminal — and /readyz
// flips before results stop being fetchable (it never stops).
func TestDrainPersistsJournal(t *testing.T) {
	dir := t.TempDir()
	srv, base, cl := newFaultServer(t, server.Options{DataDir: dir})
	j, err := cl.SubmitRun(context.Background(), runReq(0x5e400d, []int{500, 900}))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Drain ordering: not ready for new work, still serving results.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d during drain, want 503", resp.StatusCode)
	}
	done, err := cl.Job(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != api.JobDone {
		t.Fatalf("drain abandoned the job: %+v", done)
	}

	// The journal recorded the completion: a restart converges the job
	// from cache without re-simulating.
	experiment.ResetSweepCache()
	before := experiment.SchedulerStats()
	_, cl2 := newTestServer(t, server.Options{DataDir: dir})
	got, err := cl2.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobDone || mustJSON(t, *got.Run) != mustJSON(t, *done.Run) {
		t.Errorf("restart after drain drifted: %+v vs %+v", got, done)
	}
	if sim := experiment.SchedulerStats().Simulated - before.Simulated; sim != 0 {
		t.Errorf("restart re-simulated %d cells after a clean drain", sim)
	}
}

// sseFrame is one parsed SSE event: its id and decoded payload.
type sseFrame struct {
	id   string
	data string
}

// readFrames consumes SSE frames from r until the stream closes.
func readFrames(r io.Reader) []sseFrame {
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.data != "":
			frames = append(frames, cur)
			cur = sseFrame{}
		}
	}
	return frames
}

// TestSSEResumeSkipsSeenFrames: a reconnect carrying Last-Event-ID
// resumes after the acknowledged frame instead of replaying it — the
// stream for an already-seen running state delivers only the terminal
// transition.
func TestSSEResumeSkipsSeenFrames(t *testing.T) {
	_, base, cl := newFaultServer(t, server.Options{})
	j, err := cl.SubmitRun(context.Background(), runReq(0x5e400e, longValues()))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, j.ID, api.JobRunning)

	// First subscription: observe the running frame and its id.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+j.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var lastID string
	for sc.Scan() {
		if id, ok := strings.CutPrefix(sc.Text(), "id: "); ok {
			lastID = id
			break
		}
	}
	cancel()
	resp.Body.Close()
	if lastID == "" {
		t.Fatal("first subscription produced no id line")
	}

	// Resumed subscription: the running frame (id ≤ Last-Event-ID) must
	// not repeat; cancelling the job delivers exactly the terminal frame.
	req2, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+j.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", lastID)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	cancelErr := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		_, err := cl.Cancel(context.Background(), j.ID)
		cancelErr <- err
	}()
	frames := readFrames(resp2.Body)
	if err := <-cancelErr; err != nil {
		t.Fatalf("cancel failed: %v", err)
	}
	if len(frames) != 1 {
		t.Fatalf("resumed stream delivered %d frames, want exactly the terminal one: %+v", len(frames), frames)
	}
	if !strings.Contains(frames[0].data, api.JobCancelled) {
		t.Errorf("resumed stream's frame is not the terminal snapshot: %s", frames[0].data)
	}
	if prev, _ := strconv.Atoi(lastID); frames[0].id != strconv.Itoa(prev+1) {
		t.Errorf("terminal frame id %s does not follow resumed id %s", frames[0].id, lastID)
	}
}
