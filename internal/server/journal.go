package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/api"
	"repro/internal/resil"
)

// The durable job journal: an append-only write-ahead log of job state
// transitions under Options.DataDir. Each line is one record,
//
//	crc32(payload) as 8 hex chars, one space, JSON payload, newline
//
// so a torn final write (crash mid-append) is detectable: replay keeps
// the longest prefix of intact records and truncates the rest via the
// same temp-file-plus-rename hygiene the disk cache uses. Submissions
// are journaled synchronously *before* they are acknowledged — a job
// the client saw accepted is on disk — while start/finish marks are
// best-effort (losing one re-runs a job on restart; fingerprints make
// that idempotent).
const journalFile = "journal.wal"

// journalRecord is one WAL line. Type is "submit", "start", or
// "finish"; the other fields populate by type.
type journalRecord struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	MS   int64  `json:"ms"` // wall-clock of the transition

	// submit
	Kind        string            `json:"kind,omitempty"`
	Run         *api.RunRequest   `json:"run,omitempty"`
	Sweep       *api.SweepRequest `json:"sweep,omitempty"`
	Fingerprint string            `json:"fingerprint,omitempty"`

	// finish
	State    string `json:"state,omitempty"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// journal is the open WAL handle. Appends serialize under mu and fsync
// per record: the journal is written once per job transition, not per
// simulated event, so durability is cheap relative to the work it
// protects.
type journal struct {
	mu   sync.Mutex
	fs   resil.FS
	path string
	f    resil.File
}

// encodeRecord renders one WAL line.
func encodeRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	return line, nil
}

// decodeRecord parses one WAL line, rejecting torn or corrupt ones.
func decodeRecord(line []byte) (journalRecord, error) {
	var rec journalRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("server: journal line too short or malformed")
	}
	sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("server: journal checksum not hex: %w", err)
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(sum) {
		return rec, fmt.Errorf("server: journal checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("server: journal payload: %w", err)
	}
	return rec, nil
}

// openJournal replays the WAL under dir (if any), truncates any torn
// tail, and returns the open handle plus the intact records in append
// order. fsys nil means the real filesystem.
func openJournal(dir string, fsys resil.FS) (*journal, []journalRecord, error) {
	if fsys == nil {
		fsys = resil.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	recs, valid, total, err := replayJournal(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	if valid < total {
		// A torn or corrupt tail: rewrite the intact prefix atomically so
		// the append handle below starts from a clean end-of-log.
		if err := rewritePrefix(fsys, path, valid); err != nil {
			return nil, nil, fmt.Errorf("server: truncating torn journal tail: %w", err)
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening journal: %w", err)
	}
	return &journal{fs: fsys, path: path, f: f}, recs, nil
}

// replayJournal reads every intact record from the WAL. It returns the
// records, the byte length of the valid prefix, and the file's total
// length; a missing file is an empty journal.
func replayJournal(fsys resil.FS, path string) ([]journalRecord, int, int, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, 0, nil // no journal yet
	}
	var recs []journalRecord
	valid := 0
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // unterminated tail — torn write
		}
		rec, err := decodeRecord(data[valid : valid+nl])
		if err != nil {
			break // corrupt record: everything after it is suspect
		}
		recs = append(recs, rec)
		valid += nl + 1
	}
	return recs, valid, len(data), nil
}

// rewritePrefix atomically replaces the WAL with its first n bytes.
func rewritePrefix(fsys resil.FS, path string, n int) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(path), "journal-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data[:n]); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return fsys.Rename(tmp.Name(), path)
}

// append writes one record and fsyncs it. An error means the record may
// not be durable; the caller decides whether that is fatal (submit) or
// merely observable (start/finish).
func (jl *journal) append(rec journalRecord) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, err := jl.f.Write(line); err != nil {
		return resil.Transient(err)
	}
	if err := jl.f.Sync(); err != nil {
		return resil.Transient(err)
	}
	return nil
}

// Close releases the append handle (tests; the daemon holds it for
// life).
func (jl *journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// replayedJob is the aggregate of one job's journal records: what the
// daemon knew about it when it last ran.
type replayedJob struct {
	id          string
	kind        string
	run         api.RunRequest
	sweep       api.SweepRequest
	fingerprint string
	createdMS   int64
	startedMS   int64
	finishedMS  int64
	state       string // last journaled state; "" means queued/running
	errMsg      string
	attempts    int
}

// foldRecords aggregates raw records into per-job replay state, in
// submission order, and reports the highest job sequence number seen.
func foldRecords(recs []journalRecord) (jobs []*replayedJob, maxSeq uint64) {
	byID := make(map[string]*replayedJob)
	for _, rec := range recs {
		if n, ok := strings.CutPrefix(rec.Job, "job-"); ok {
			if seq, err := strconv.ParseUint(n, 10, 64); err == nil && seq > maxSeq {
				maxSeq = seq
			}
		}
		switch rec.Type {
		case "submit":
			rj := &replayedJob{id: rec.Job, kind: rec.Kind, fingerprint: rec.Fingerprint, createdMS: rec.MS}
			if rec.Run != nil {
				rj.run = *rec.Run
			}
			if rec.Sweep != nil {
				rj.sweep = *rec.Sweep
			}
			byID[rec.Job] = rj
			jobs = append(jobs, rj)
		case "start":
			if rj := byID[rec.Job]; rj != nil {
				rj.startedMS = rec.MS
				rj.attempts++
			}
		case "finish":
			if rj := byID[rec.Job]; rj != nil {
				rj.state = rec.State
				rj.errMsg = rec.Error
				rj.finishedMS = rec.MS
				if rec.Attempts > 0 {
					rj.attempts = rec.Attempts
				}
			}
		}
	}
	return jobs, maxSeq
}
