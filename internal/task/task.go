// Package task implements the application model of the paper's §3: a
// periodic task is a serial chain of subtasks connected by messages,
// Ti = [st1,m1, st2,m2, …, stn,mn]; subtasks may be replicated at run time
// so the replicas split the period's data stream (item 6), and the replica
// set PS(st) is ordered so the most recently added replica is shut down
// first (Figure 6).
package task

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sim"
)

// DemandFunc yields the ground-truth CPU demand for processing `items`
// data items. rng, when non-nil, supplies measurement noise.
type DemandFunc func(items int, rng *rand.Rand) sim.Time

// SubtaskSpec describes one executable program in the chain.
type SubtaskSpec struct {
	Name string
	// Replicable marks the subtask as eligible for run-time replication
	// (Table 1: two of the five subtasks are replicable).
	Replicable bool
	// Demand is the subtask's ground-truth CPU cost.
	Demand DemandFunc
	// OutBytesPerItem sizes the message the subtask sends to its
	// successor; zero for the final subtask.
	OutBytesPerItem int
}

// Spec describes a periodic task.
type Spec struct {
	Name     string
	Period   sim.Time
	Deadline sim.Time // relative end-to-end deadline dl(Ti)
	Subtasks []SubtaskSpec
}

// Validate reports structural errors in the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("task: spec without a name")
	}
	if s.Period <= 0 {
		return fmt.Errorf("task %s: non-positive period %v", s.Name, s.Period)
	}
	if s.Deadline <= 0 {
		return fmt.Errorf("task %s: non-positive deadline %v", s.Name, s.Deadline)
	}
	if len(s.Subtasks) == 0 {
		return fmt.Errorf("task %s: no subtasks", s.Name)
	}
	for i, st := range s.Subtasks {
		if st.Name == "" {
			return fmt.Errorf("task %s: subtask %d without a name", s.Name, i)
		}
		if st.Demand == nil {
			return fmt.Errorf("task %s: subtask %s without a demand function", s.Name, st.Name)
		}
		if st.OutBytesPerItem < 0 {
			return fmt.Errorf("task %s: subtask %s with negative output bytes", s.Name, st.Name)
		}
		if i == len(s.Subtasks)-1 && st.OutBytesPerItem != 0 {
			return fmt.Errorf("task %s: final subtask %s must not emit a message", s.Name, st.Name)
		}
	}
	return nil
}

// NumSubtasks returns the chain length n.
func (s Spec) NumSubtasks() int { return len(s.Subtasks) }

// Deployment tracks the replica placement PS(st) for every subtask of one
// task, in last-added order, plus the warm-up obligations of freshly
// spawned replicas.
type Deployment struct {
	spec       Spec
	placements [][]int
	warmup     []map[int]bool // per stage, processors owing a warm-up
}

// NewDeployment places subtask i's original process on homes[i].
func NewDeployment(spec Spec, homes []int) (*Deployment, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(homes) != len(spec.Subtasks) {
		return nil, fmt.Errorf("task %s: %d home processors for %d subtasks",
			spec.Name, len(homes), len(spec.Subtasks))
	}
	d := &Deployment{
		spec:       spec,
		placements: make([][]int, len(homes)),
		warmup:     make([]map[int]bool, len(homes)),
	}
	for i, h := range homes {
		if h < 0 {
			return nil, fmt.Errorf("task %s: negative home processor for subtask %d", spec.Name, i)
		}
		d.placements[i] = []int{h}
		d.warmup[i] = make(map[int]bool)
	}
	return d, nil
}

// Spec returns the deployed task's spec.
func (d *Deployment) Spec() Spec { return d.spec }

func (d *Deployment) checkStage(stage int) {
	if stage < 0 || stage >= len(d.placements) {
		panic(fmt.Sprintf("task: stage %d out of %d", stage, len(d.placements)))
	}
}

// Replicas returns a copy of PS(st) for the stage, in placement order
// (home first, latest addition last).
func (d *Deployment) Replicas(stage int) []int {
	d.checkStage(stage)
	return append([]int(nil), d.placements[stage]...)
}

// AppendReplicas appends PS(st) for the stage to dst and returns the
// extended slice — the allocation-free counterpart of Replicas for hot
// paths that reuse a scratch buffer.
func (d *Deployment) AppendReplicas(stage int, dst []int) []int {
	d.checkStage(stage)
	return append(dst, d.placements[stage]...)
}

// ReplicaCount returns |PS(st)| for the stage.
func (d *Deployment) ReplicaCount(stage int) int {
	d.checkStage(stage)
	return len(d.placements[stage])
}

// Has reports whether the stage already has a replica on proc.
func (d *Deployment) Has(stage, proc int) bool {
	d.checkStage(stage)
	for _, p := range d.placements[stage] {
		if p == proc {
			return true
		}
	}
	return false
}

// AddReplica appends a replica of the stage on proc (Figure 5 step 5).
// The new replica owes a warm-up on its first use.
func (d *Deployment) AddReplica(stage, proc int) error {
	d.checkStage(stage)
	if !d.spec.Subtasks[stage].Replicable {
		return fmt.Errorf("task %s: subtask %s is not replicable",
			d.spec.Name, d.spec.Subtasks[stage].Name)
	}
	if d.Has(stage, proc) {
		return fmt.Errorf("task %s: subtask %s already has a replica on processor %d",
			d.spec.Name, d.spec.Subtasks[stage].Name, proc)
	}
	if proc < 0 {
		return fmt.Errorf("task %s: negative processor id %d", d.spec.Name, proc)
	}
	d.placements[stage] = append(d.placements[stage], proc)
	d.warmup[stage][proc] = true
	return nil
}

// RemoveLastReplica pops the most recently added replica (Figure 6). It
// refuses to remove the last remaining replica, returning ok = false.
func (d *Deployment) RemoveLastReplica(stage int) (proc int, ok bool) {
	d.checkStage(stage)
	ps := d.placements[stage]
	if len(ps) <= 1 {
		return 0, false
	}
	proc = ps[len(ps)-1]
	d.placements[stage] = ps[:len(ps)-1]
	delete(d.warmup[stage], proc)
	return proc, true
}

// RemoveProcessor drops the stage's replica on proc wherever it sits in
// PS(st); it refuses (ok = false) when proc hosts the only replica — use
// ReplaceProcessor to relocate in that case. Used for crash fail-over.
func (d *Deployment) RemoveProcessor(stage, proc int) bool {
	d.checkStage(stage)
	ps := d.placements[stage]
	if len(ps) <= 1 {
		return false
	}
	for i, p := range ps {
		if p == proc {
			d.placements[stage] = append(ps[:i:i], ps[i+1:]...)
			delete(d.warmup[stage], proc)
			return true
		}
	}
	return false
}

// ReplaceProcessor relocates the stage's replica from old to new,
// preserving its position in PS(st). The relocated replica owes a
// warm-up. Used when a crashed node hosted the only replica.
func (d *Deployment) ReplaceProcessor(stage, old, new int) error {
	d.checkStage(stage)
	if new < 0 {
		return fmt.Errorf("task %s: negative processor id %d", d.spec.Name, new)
	}
	if d.Has(stage, new) {
		return fmt.Errorf("task %s: subtask %s already has a replica on processor %d",
			d.spec.Name, d.spec.Subtasks[stage].Name, new)
	}
	for i, p := range d.placements[stage] {
		if p == old {
			d.placements[stage][i] = new
			delete(d.warmup[stage], old)
			d.warmup[stage][new] = true
			return nil
		}
	}
	return fmt.Errorf("task %s: subtask %s has no replica on processor %d",
		d.spec.Name, d.spec.Subtasks[stage].Name, old)
}

// ConsumeWarmup reports whether the replica on proc still owes its
// warm-up, clearing the obligation.
func (d *Deployment) ConsumeWarmup(stage, proc int) bool {
	d.checkStage(stage)
	if d.warmup[stage][proc] {
		delete(d.warmup[stage], proc)
		return true
	}
	return false
}

// ReplicaCounts returns |PS(st)| for every stage.
func (d *Deployment) ReplicaCounts() []int {
	out := make([]int, len(d.placements))
	for i := range d.placements {
		out[i] = len(d.placements[i])
	}
	return out
}

// MeanReplicasOfReplicable returns the mean replica count across
// replicable subtasks — the quantity Figure 9(d) reports.
func (d *Deployment) MeanReplicasOfReplicable() float64 {
	var sum, n float64
	for i, st := range d.spec.Subtasks {
		if st.Replicable {
			sum += float64(len(d.placements[i]))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// SplitItems divides `items` across k replicas as evenly as integers
// allow: the first items%k replicas receive one extra item.
func SplitItems(items, k int) []int {
	return SplitItemsInto(nil, items, k)
}

// SplitItemsInto is SplitItems writing into dst's storage (grown as
// needed), for hot paths that reuse a scratch buffer.
func SplitItemsInto(dst []int, items, k int) []int {
	if k <= 0 {
		panic(fmt.Sprintf("task: SplitItems across %d replicas", k))
	}
	if items < 0 {
		panic(fmt.Sprintf("task: SplitItems of %d items", items))
	}
	if cap(dst) < k {
		dst = make([]int, k)
	}
	out := dst[:k]
	base, extra := items/k, items%k
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
