package task

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func demand(items int, _ *rand.Rand) sim.Time {
	return sim.Time(items) * sim.Microsecond
}

func chainSpec(n int) Spec {
	s := Spec{Name: "T1", Period: sim.Second, Deadline: 990 * sim.Millisecond}
	for i := 0; i < n; i++ {
		st := SubtaskSpec{
			Name:            string(rune('a' + i)),
			Replicable:      i == 2 || i == 4,
			Demand:          demand,
			OutBytesPerItem: 80,
		}
		if i == n-1 {
			st.OutBytesPerItem = 0
		}
		s.Subtasks = append(s.Subtasks, st)
	}
	return s
}

func TestSpecValidateAccepts(t *testing.T) {
	if err := chainSpec(5).Validate(); err != nil {
		t.Fatal(err)
	}
	if chainSpec(5).NumSubtasks() != 5 {
		t.Error("NumSubtasks wrong")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := chainSpec(3)
	cases := map[string]func(Spec) Spec{
		"no name":       func(s Spec) Spec { s.Name = ""; return s },
		"zero period":   func(s Spec) Spec { s.Period = 0; return s },
		"zero deadline": func(s Spec) Spec { s.Deadline = 0; return s },
		"no subtasks":   func(s Spec) Spec { s.Subtasks = nil; return s },
		"unnamed subtask": func(s Spec) Spec {
			s.Subtasks = append([]SubtaskSpec(nil), s.Subtasks...)
			s.Subtasks[1].Name = ""
			return s
		},
		"nil demand": func(s Spec) Spec {
			s.Subtasks = append([]SubtaskSpec(nil), s.Subtasks...)
			s.Subtasks[0].Demand = nil
			return s
		},
		"negative out bytes": func(s Spec) Spec {
			s.Subtasks = append([]SubtaskSpec(nil), s.Subtasks...)
			s.Subtasks[0].OutBytesPerItem = -1
			return s
		},
		"final emits": func(s Spec) Spec {
			s.Subtasks = append([]SubtaskSpec(nil), s.Subtasks...)
			s.Subtasks[len(s.Subtasks)-1].OutBytesPerItem = 80
			return s
		},
	}
	for name, mutate := range cases {
		if err := mutate(base).Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func newDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewDeployment(chainSpec(5), []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment(chainSpec(5), []int{0, 1}); err == nil {
		t.Error("short homes accepted")
	}
	if _, err := NewDeployment(chainSpec(5), []int{0, 1, 2, 3, -1}); err == nil {
		t.Error("negative home accepted")
	}
	bad := chainSpec(5)
	bad.Name = ""
	if _, err := NewDeployment(bad, []int{0, 1, 2, 3, 4}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestDeploymentInitialPlacement(t *testing.T) {
	d := newDeployment(t)
	for i := 0; i < 5; i++ {
		if got := d.Replicas(i); len(got) != 1 || got[0] != i {
			t.Errorf("stage %d replicas = %v", i, got)
		}
		if d.ReplicaCount(i) != 1 {
			t.Errorf("stage %d count = %d", i, d.ReplicaCount(i))
		}
	}
	if !d.Has(2, 2) || d.Has(2, 5) {
		t.Error("Has wrong")
	}
}

func TestAddRemoveReplicaOrdering(t *testing.T) {
	d := newDeployment(t)
	if err := d.AddReplica(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.AddReplica(2, 0); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 5, 0}
	got := d.Replicas(2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replicas = %v, want %v", got, want)
		}
	}
	// Last added popped first.
	if p, ok := d.RemoveLastReplica(2); !ok || p != 0 {
		t.Errorf("popped %d,%v want 0,true", p, ok)
	}
	if p, ok := d.RemoveLastReplica(2); !ok || p != 5 {
		t.Errorf("popped %d,%v want 5,true", p, ok)
	}
	// The home replica is never removed (Figure 6 step 1).
	if _, ok := d.RemoveLastReplica(2); ok {
		t.Error("removed the last remaining replica")
	}
}

func TestAddReplicaRejections(t *testing.T) {
	d := newDeployment(t)
	if err := d.AddReplica(0, 5); err == nil {
		t.Error("replicated a non-replicable subtask")
	}
	if err := d.AddReplica(2, 2); err == nil {
		t.Error("duplicate placement accepted")
	}
	if err := d.AddReplica(2, -3); err == nil {
		t.Error("negative processor accepted")
	}
}

func TestReplicasReturnsCopy(t *testing.T) {
	d := newDeployment(t)
	r := d.Replicas(2)
	r[0] = 99
	if d.Replicas(2)[0] != 2 {
		t.Error("Replicas exposed internal storage")
	}
}

func TestWarmupLifecycle(t *testing.T) {
	d := newDeployment(t)
	if d.ConsumeWarmup(2, 2) {
		t.Error("home replica owes warm-up")
	}
	if err := d.AddReplica(2, 5); err != nil {
		t.Fatal(err)
	}
	if !d.ConsumeWarmup(2, 5) {
		t.Error("fresh replica owes no warm-up")
	}
	if d.ConsumeWarmup(2, 5) {
		t.Error("warm-up consumed twice")
	}
	// Removing a replica clears any pending warm-up.
	if err := d.AddReplica(2, 1); err != nil {
		t.Fatal(err)
	}
	d.RemoveLastReplica(2)
	if err := d.AddReplica(2, 1); err != nil {
		t.Fatal(err)
	}
	if !d.ConsumeWarmup(2, 1) {
		t.Error("re-added replica owes a fresh warm-up")
	}
}

func TestStageBoundsPanics(t *testing.T) {
	d := newDeployment(t)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range stage did not panic")
		}
	}()
	d.Replicas(5)
}

func TestReplicaCountsAndMean(t *testing.T) {
	d := newDeployment(t)
	if got := d.ReplicaCounts(); len(got) != 5 {
		t.Fatalf("counts = %v", got)
	}
	if got := d.MeanReplicasOfReplicable(); got != 1 {
		t.Errorf("mean = %v, want 1", got)
	}
	d.AddReplica(2, 5)
	d.AddReplica(2, 1)
	d.AddReplica(4, 0)
	// Stage 2 has 3 replicas, stage 4 has 2 → mean 2.5.
	if got := d.MeanReplicasOfReplicable(); got != 2.5 {
		t.Errorf("mean = %v, want 2.5", got)
	}
}

func TestMeanReplicasNoReplicable(t *testing.T) {
	s := chainSpec(2)
	s.Subtasks[0].Replicable = false
	s.Subtasks[1].Replicable = false
	d, err := NewDeployment(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanReplicasOfReplicable() != 0 {
		t.Error("mean over zero replicable subtasks should be 0")
	}
}

func TestSplitItems(t *testing.T) {
	cases := []struct {
		items, k int
		want     []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 2, []int{0, 0}},
	}
	for _, c := range cases {
		got := SplitItems(c.items, c.k)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("SplitItems(%d,%d) = %v, want %v", c.items, c.k, got, c.want)
				break
			}
		}
	}
}

func TestSplitItemsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero k":         func() { SplitItems(5, 0) },
		"negative items": func() { SplitItems(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: SplitItems conserves the total and is maximally even.
func TestPropertySplitItems(t *testing.T) {
	f := func(items uint16, k8 uint8) bool {
		k := int(k8%16) + 1
		parts := SplitItems(int(items), k)
		sum, min, max := 0, parts[0], parts[0]
		for _, p := range parts {
			sum += p
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == int(items) && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodRecord(t *testing.T) {
	r := &PeriodRecord{
		Period:      3,
		Items:       100,
		ReleasedAt:  sim.Second,
		CompletedAt: sim.Second + 500*sim.Millisecond,
		Deadline:    sim.Second + 990*sim.Millisecond,
		Stages: []StageObservation{
			{ReadyAt: sim.Second, DoneAt: sim.Second + 100*sim.Millisecond,
				DeliveredAt: sim.Second + 120*sim.Millisecond, Replicas: 2},
		},
	}
	if r.EndToEnd() != 500*sim.Millisecond {
		t.Errorf("EndToEnd = %v", r.EndToEnd())
	}
	if r.Missed() {
		t.Error("on-time instance marked missed")
	}
	if r.Stages[0].ExecLatency() != 100*sim.Millisecond {
		t.Errorf("ExecLatency = %v", r.Stages[0].ExecLatency())
	}
	if r.Stages[0].CommLatency() != 20*sim.Millisecond {
		t.Errorf("CommLatency = %v", r.Stages[0].CommLatency())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
	r.CompletedAt = r.Deadline + 1
	if !r.Missed() {
		t.Error("late instance not marked missed")
	}
}

func TestRemoveProcessor(t *testing.T) {
	d := newDeployment(t)
	d.AddReplica(2, 5)
	d.AddReplica(2, 1)
	// Remove from the middle of PS(st): order of the rest preserved.
	if !d.RemoveProcessor(2, 5) {
		t.Fatal("RemoveProcessor failed")
	}
	got := d.Replicas(2)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("replicas = %v, want [2 1]", got)
	}
	// Refuses to remove the only replica.
	d.RemoveProcessor(2, 1)
	if d.RemoveProcessor(2, 2) {
		t.Error("removed the sole replica")
	}
	// Unknown processor.
	if d.RemoveProcessor(2, 9) {
		t.Error("removed a processor that was never placed")
	}
}

func TestRemoveProcessorClearsWarmup(t *testing.T) {
	d := newDeployment(t)
	d.AddReplica(2, 5)
	if !d.RemoveProcessor(2, 5) {
		t.Fatal("remove failed")
	}
	d.AddReplica(2, 5)
	if !d.ConsumeWarmup(2, 5) {
		t.Error("re-added replica owes no warm-up")
	}
}

func TestReplaceProcessor(t *testing.T) {
	d := newDeployment(t)
	if err := d.ReplaceProcessor(2, 2, 4); err != nil {
		t.Fatal(err)
	}
	if got := d.Replicas(2); got[0] != 4 {
		t.Errorf("replicas = %v, want home relocated to 4", got)
	}
	if !d.ConsumeWarmup(2, 4) {
		t.Error("relocated replica owes no warm-up")
	}
	// Errors.
	if err := d.ReplaceProcessor(2, 9, 5); err == nil {
		t.Error("replaced a non-existent placement")
	}
	d.AddReplica(2, 5)
	if err := d.ReplaceProcessor(2, 4, 5); err == nil {
		t.Error("replaced onto an already-hosting processor")
	}
	if err := d.ReplaceProcessor(2, 4, -1); err == nil {
		t.Error("replaced onto a negative processor")
	}
}

// Property: any sequence of add/remove-last/remove/replace operations
// preserves the deployment invariants — no duplicate placements, at least
// one replica per stage, and warm-ups only for current placements.
func TestPropertyDeploymentInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		d, err := NewDeployment(chainSpec(5), []int{0, 1, 2, 3, 4})
		if err != nil {
			return false
		}
		for _, op := range ops {
			stage := int(op) % 5
			proc := int(op>>3) % 8
			switch (op >> 8) % 4 {
			case 0:
				_ = d.AddReplica(stage, proc) // may legally fail
			case 1:
				d.RemoveLastReplica(stage)
			case 2:
				d.RemoveProcessor(stage, proc)
			case 3:
				_ = d.ReplaceProcessor(stage, proc, (proc+1)%8)
			}
		}
		for stage := 0; stage < 5; stage++ {
			replicas := d.Replicas(stage)
			if len(replicas) < 1 {
				return false
			}
			seen := map[int]bool{}
			for _, p := range replicas {
				if p < 0 || seen[p] {
					return false
				}
				seen[p] = true
			}
			// Non-replicable stages never grow.
			if !chainSpec(5).Subtasks[stage].Replicable && len(replicas) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
