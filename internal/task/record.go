package task

import (
	"fmt"

	"repro/internal/sim"
)

// StageObservation records what the run-time monitor can see of one stage
// during one period: when the stage's inputs were all available, when its
// last replica finished, and when its outputs were fully delivered to the
// next stage.
type StageObservation struct {
	ReadyAt     sim.Time // all inputs delivered to every replica
	DoneAt      sim.Time // last replica's CPU job completed
	DeliveredAt sim.Time // outputs delivered to next stage (== DoneAt for the final stage)
	Replicas    int      // |PS(st)| used this period
}

// ExecLatency is the stage's observed execution latency (the quantity
// compared against dl(st)).
func (o StageObservation) ExecLatency() sim.Time { return o.DoneAt - o.ReadyAt }

// CommLatency is the observed delay of the stage's outgoing message (the
// quantity compared against dl(m)).
func (o StageObservation) CommLatency() sim.Time { return o.DeliveredAt - o.DoneAt }

// PeriodRecord is one completed task instance.
type PeriodRecord struct {
	Period      int
	Items       int
	ReleasedAt  sim.Time
	CompletedAt sim.Time
	Deadline    sim.Time // absolute
	Stages      []StageObservation
}

// EndToEnd returns the instance's release-to-completion latency.
func (r *PeriodRecord) EndToEnd() sim.Time { return r.CompletedAt - r.ReleasedAt }

// Missed reports whether the instance finished after its deadline.
func (r *PeriodRecord) Missed() bool { return r.CompletedAt > r.Deadline }

func (r *PeriodRecord) String() string {
	status := "met"
	if r.Missed() {
		status = "MISSED"
	}
	return fmt.Sprintf("period %d: %d items, latency %v (%s)", r.Period, r.Items, r.EndToEnd(), status)
}
