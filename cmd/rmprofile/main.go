// Command rmprofile runs the §4.2.1 profiling pipeline: it measures every
// benchmark subtask's execution latency over a (data size × utilization)
// grid, fits the eq. (3) regression per subtask, profiles the segment's
// buffer delay, and fits eq. (5)'s slope — printing the resulting models
// alongside the paper's published Table 2/3 coefficients.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/dynbench"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/regress"
)

func main() {
	var (
		seed      = cliflag.Seed(flag.CommandLine, 11)
		reps      = flag.Int("reps", 3, "measurements per grid point")
		blockProf = flag.String("blockprofile", "", "write a goroutine blocking profile to this file (diagnoses lane-barrier stalls in parallel runs)")
		mutexProf = flag.String("mutexprofile", "", "write a mutex contention profile to this file")
		logFmt    = cliflag.LogFormat(flag.CommandLine)
	)
	flag.Parse()

	// Contention profiling must be armed before the measured work runs;
	// the profiles are written at exit by writeContentionProfiles.
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
	}
	defer writeContentionProfiles(*blockProf, *mutexProf)

	logger, err := obs.NewLogger(os.Stderr, *logFmt, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmprofile:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	spec := dynbench.NewTask(dynbench.DefaultConfig())
	grid := profile.DefaultExecGrid()
	grid.Reps = *reps

	fmt.Println("profiling execution latencies (eq. 3)...")
	models, err := experiment.BuildModels(core.DefaultConfig(), spec, grid, profile.DefaultCommGrid(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmprofile:", err)
		os.Exit(1)
	}
	for i, st := range spec.Subtasks {
		marker := " "
		if st.Replicable {
			marker = "*"
		}
		fmt.Printf("%s subtask %d (%s):\n    %v\n    %v\n", marker, i+1, st.Name, models.Exec[i], models.ExecFit[i])
	}
	fmt.Println("\npublished Table 2 coefficients (u as a fraction; see DESIGN.md):")
	fmt.Printf("  subtask 3 (Filter):     %v\n", regress.PaperExecSubtask3())
	fmt.Printf("  subtask 5 (EvalDecide): %v\n", regress.PaperExecSubtask5())

	fmt.Println("\nbuffer-delay slope (eq. 5):")
	fmt.Printf("  fitted k = %.4f ms per 100 tracks (paper Table 3: %.1f)\n",
		models.Comm.K, regress.PaperBufferSlopeK)
}

// writeContentionProfiles dumps the block and mutex profiles armed in
// main. Reached only on the success path (error exits skip defers —
// a profile of a failed run would mislead anyway).
func writeContentionProfiles(blockPath, mutexPath string) {
	write := func(path, name string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmprofile:", err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "rmprofile:", err)
			return
		}
		fmt.Printf("%s profile written to %s\n", name, path)
	}
	write(blockPath, "block")
	write(mutexPath, "mutex")
}
