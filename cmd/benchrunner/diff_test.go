package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap marshals a synthetic snapshot for diff-gate tests.
func writeSnap(t *testing.T, dir, name string, workloads []workloadRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(snapshot{Schema: snapshotSchema, Recorded: "test", Iterations: 1, Workloads: workloads})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffGate pins the gate semantics: only gated workloads past the
// threshold fail, ungated regressions and new workloads are
// informational, and the report records the profiler overhead.
func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	overhead := 12.5
	base := writeSnap(t, dir, "base.json", []workloadRecord{
		{Name: "gated-ok", Gated: true, WallMinNs: 1000},
		{Name: "gated-bad", Gated: true, WallMinNs: 1000},
		{Name: "free", Gated: false, WallMinNs: 1000},
	})
	cand := writeSnap(t, dir, "cand.json", []workloadRecord{
		{Name: "gated-ok", Gated: true, WallMinNs: 1050},  // +5%: within gate
		{Name: "gated-bad", Gated: true, WallMinNs: 1300}, // +30%: regression
		{Name: "free", Gated: false, WallMinNs: 9000},     // ungated: info only
		{Name: "brand-new", Gated: true, WallMinNs: 7, ProfilerOverheadPct: &overhead},
	})

	report := filepath.Join(dir, "report.txt")
	pass, err := runDiff(base, cand, 10, report)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("a +30% gated regression must fail the 10% gate")
	}
	text, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gated-bad", "FAIL", "new (no baseline)", "+12.5%", "result: FAIL"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}

	// The same candidate passes once the threshold tolerates +30%.
	pass, err = runDiff(base, cand, 35, "")
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatal("+30% must pass a 35% gate")
	}
}

// writeSnapCap is writeSnap with an explicit host parallel capacity.
func writeSnapCap(t *testing.T, dir, name string, capacity float64, workloads []workloadRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(snapshot{
		Schema: snapshotSchema, Recorded: "test", Iterations: 1,
		ParallelCapacity: capacity, Workloads: workloads,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffLaneSpeedupGate pins the lane-speedup gate: the big-topology
// serial/parallel ratio must clear minLaneSpeedup, but only binds when
// the candidate host measured real parallel capacity at GOMAXPROCS ≥ 4.
func TestDiffLaneSpeedupGate(t *testing.T) {
	dir := t.TempDir()
	pair := func(serial, parallel int64, gomaxprocs int) []workloadRecord {
		return []workloadRecord{
			{Name: laneSerialWorkload, Gated: true, WallMinNs: serial, GOMAXPROCS: gomaxprocs, Lanes: 8, Workers: 1},
			{Name: laneParallelWorkload, Gated: true, WallMinNs: parallel, GOMAXPROCS: gomaxprocs, Lanes: 8, Workers: 8},
		}
	}
	base := writeSnapCap(t, dir, "base.json", 4, pair(1000, 500, 4))

	// Capable host, ratio 2.0× ≥ 1.7×: pass.
	good := writeSnapCap(t, dir, "good.json", 4, pair(1000, 500, 4))
	if pass, err := runDiff(base, good, 100, ""); err != nil || !pass {
		t.Fatalf("2.0× on a capable host must pass, got pass=%v err=%v", pass, err)
	}
	// Capable host, ratio 1.25× < 1.7×: fail.
	slow := writeSnapCap(t, dir, "slow.json", 4, pair(1000, 800, 4))
	if pass, err := runDiff(base, slow, 100, ""); err != nil || pass {
		t.Fatalf("1.25× on a capable host must fail the gate, got pass=%v err=%v", pass, err)
	}
	// One-core host (capacity 1.0): same poor ratio is informational.
	onecore := writeSnapCap(t, dir, "onecore.json", 1, pair(1000, 800, 4))
	report := filepath.Join(dir, "report.txt")
	if pass, err := runDiff(base, onecore, 100, report); err != nil || !pass {
		t.Fatalf("a host without parallel capacity must not gate, got pass=%v err=%v", pass, err)
	}
	text, _ := os.ReadFile(report)
	if !strings.Contains(string(text), "not binding") {
		t.Errorf("report must say the gate is not binding:\n%s", text)
	}
	// GOMAXPROCS < 4 at record time: not binding either.
	lowprocs := writeSnapCap(t, dir, "lowprocs.json", 4, pair(1000, 800, 2))
	if pass, err := runDiff(base, lowprocs, 100, ""); err != nil || !pass {
		t.Fatalf("GOMAXPROCS<4 must not gate, got pass=%v err=%v", pass, err)
	}
}

// TestReadSnapshotValidation pins schema and emptiness checks.
func TestReadSnapshotValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := readSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"benchrunner/v999","workloads":[{"name":"x"}]}`), 0o644)
	if _, err := readSnapshot(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema must be rejected, got %v", err)
	}
	empty := writeSnap(t, dir, "empty.json", nil)
	if _, err := readSnapshot(empty); err == nil {
		t.Error("snapshot with no workloads must be rejected")
	}
}
