package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap marshals a synthetic snapshot for diff-gate tests.
func writeSnap(t *testing.T, dir, name string, workloads []workloadRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(snapshot{Schema: snapshotSchema, Recorded: "test", Iterations: 1, Workloads: workloads})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffGate pins the gate semantics: only gated workloads past the
// threshold fail, ungated regressions and new workloads are
// informational, and the report records the profiler overhead.
func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	overhead := 12.5
	base := writeSnap(t, dir, "base.json", []workloadRecord{
		{Name: "gated-ok", Gated: true, WallMinNs: 1000},
		{Name: "gated-bad", Gated: true, WallMinNs: 1000},
		{Name: "free", Gated: false, WallMinNs: 1000},
	})
	cand := writeSnap(t, dir, "cand.json", []workloadRecord{
		{Name: "gated-ok", Gated: true, WallMinNs: 1050},  // +5%: within gate
		{Name: "gated-bad", Gated: true, WallMinNs: 1300}, // +30%: regression
		{Name: "free", Gated: false, WallMinNs: 9000},     // ungated: info only
		{Name: "brand-new", Gated: true, WallMinNs: 7, ProfilerOverheadPct: &overhead},
	})

	report := filepath.Join(dir, "report.txt")
	pass, err := runDiff(base, cand, 10, report)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("a +30% gated regression must fail the 10% gate")
	}
	text, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gated-bad", "FAIL", "new (no baseline)", "+12.5%", "result: FAIL"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}

	// The same candidate passes once the threshold tolerates +30%.
	pass, err = runDiff(base, cand, 35, "")
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatal("+30% must pass a 35% gate")
	}
}

// TestReadSnapshotValidation pins schema and emptiness checks.
func TestReadSnapshotValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := readSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"benchrunner/v999","workloads":[{"name":"x"}]}`), 0o644)
	if _, err := readSnapshot(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema must be rejected, got %v", err)
	}
	empty := writeSnap(t, dir, "empty.json", nil)
	if _, err := readSnapshot(empty); err == nil {
		t.Error("snapshot with no workloads must be rejected")
	}
}
