package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// runDiff compares a candidate snapshot against the committed baseline
// and renders the regression report. It returns false (without error)
// when any gated workload's best-of-N wall time regressed past the
// threshold percentage; ungated workloads are reported but never gate.
func runDiff(basePath, candPath string, threshold float64, reportPath string) (bool, error) {
	base, err := readSnapshot(basePath)
	if err != nil {
		return false, err
	}
	cand, err := readSnapshot(candPath)
	if err != nil {
		return false, err
	}

	baseByName := make(map[string]workloadRecord, len(base.Workloads))
	for _, w := range base.Workloads {
		baseByName[w.Name] = w
	}

	var rep strings.Builder
	fmt.Fprintf(&rep, "bench-diff: %s (recorded %s) vs %s (recorded %s), gate %.0f%% on wall min\n\n",
		basePath, base.Recorded, candPath, cand.Recorded, threshold)
	fmt.Fprintf(&rep, "%-20s %6s  %14s  %14s  %8s  %10s  %s\n",
		"workload", "gate", "baseline min", "candidate min", "delta", "pprof ovh", "verdict")

	pass := true
	for _, c := range cand.Workloads {
		gate := "-"
		if c.Gated {
			gate = "gated"
		}
		overhead := "n/a"
		if c.ProfilerOverheadPct != nil {
			overhead = fmt.Sprintf("%+.1f%%", *c.ProfilerOverheadPct)
		}
		b, ok := baseByName[c.Name]
		if !ok {
			fmt.Fprintf(&rep, "%-20s %6s  %14s  %14v  %8s  %10s  %s\n",
				c.Name, gate, "-", time.Duration(c.WallMinNs), "-", overhead, "new (no baseline)")
			continue
		}
		delete(baseByName, c.Name)
		delta := float64(c.WallMinNs-b.WallMinNs) / float64(b.WallMinNs) * 100
		verdict := "info"
		if c.Gated {
			if delta > threshold {
				verdict = "FAIL"
				pass = false
			} else {
				verdict = "ok"
			}
		}
		fmt.Fprintf(&rep, "%-20s %6s  %14v  %14v  %+7.1f%%  %10s  %s\n",
			c.Name, gate, time.Duration(b.WallMinNs), time.Duration(c.WallMinNs), delta, overhead, verdict)
	}
	for name := range baseByName {
		fmt.Fprintf(&rep, "%-20s %6s  workload present in baseline but missing from candidate\n", name, "?")
	}
	if !checkLaneSpeedup(&rep, cand) {
		pass = false
	}
	if pass {
		rep.WriteString("\nresult: PASS — no gated workload regressed past the threshold\n")
	} else {
		fmt.Fprintf(&rep, "\nresult: FAIL — gated workload(s) regressed more than %.0f%% on wall min\n", threshold)
	}

	fmt.Print(rep.String())
	if reportPath != "" {
		if err := os.WriteFile(reportPath, []byte(rep.String()), 0o644); err != nil {
			return false, err
		}
	}
	return pass, nil
}

// Lane speedup gate: the parallel big-topology workload must beat its
// serial twin by at least this wall-min ratio — the point of the sharded
// simulation core. The gate only binds when the candidate was recorded
// on a host with real parallel capacity (≥ minGateCapacity on the spin
// test) at GOMAXPROCS ≥ 4; a one-core CI runner reports the ratio but
// cannot meaningfully fail it.
const (
	laneSerialWorkload   = "big-topology-serial"
	laneParallelWorkload = "big-topology-parallel"
	minLaneSpeedup       = 1.7
	minGateCapacity      = 3.0
)

func checkLaneSpeedup(rep *strings.Builder, cand snapshot) bool {
	byName := make(map[string]workloadRecord, len(cand.Workloads))
	for _, w := range cand.Workloads {
		byName[w.Name] = w
	}
	s, okS := byName[laneSerialWorkload]
	p, okP := byName[laneParallelWorkload]
	if !okS || !okP {
		return true // lane pair not recorded; nothing to gate
	}
	ratio := float64(s.WallMinNs) / float64(p.WallMinNs)
	binding := cand.ParallelCapacity >= minGateCapacity && p.GOMAXPROCS >= 4
	fmt.Fprintf(rep, "\nlane speedup: serial %v / parallel %v = %.2f× (need ≥ %.1f×; host capacity %.2f×, GOMAXPROCS %d)\n",
		time.Duration(s.WallMinNs), time.Duration(p.WallMinNs), ratio, minLaneSpeedup, cand.ParallelCapacity, p.GOMAXPROCS)
	if !binding {
		rep.WriteString("lane speedup: not binding — recording host lacks parallel capacity\n")
		return true
	}
	if ratio < minLaneSpeedup {
		fmt.Fprintf(rep, "lane speedup: FAIL — parallel driver below the %.1f× bar\n", minLaneSpeedup)
		return false
	}
	return true
}

func readSnapshot(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != snapshotSchema {
		return snapshot{}, fmt.Errorf("%s: schema %q unsupported (want %q)", path, s.Schema, snapshotSchema)
	}
	if len(s.Workloads) == 0 {
		return snapshot{}, fmt.Errorf("%s: snapshot holds no workloads", path)
	}
	return s, nil
}
