package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// runDiff compares a candidate snapshot against the committed baseline
// and renders the regression report. It returns false (without error)
// when any gated workload's best-of-N wall time regressed past the
// threshold percentage; ungated workloads are reported but never gate.
func runDiff(basePath, candPath string, threshold float64, reportPath string) (bool, error) {
	base, err := readSnapshot(basePath)
	if err != nil {
		return false, err
	}
	cand, err := readSnapshot(candPath)
	if err != nil {
		return false, err
	}

	baseByName := make(map[string]workloadRecord, len(base.Workloads))
	for _, w := range base.Workloads {
		baseByName[w.Name] = w
	}

	var rep strings.Builder
	fmt.Fprintf(&rep, "bench-diff: %s (recorded %s) vs %s (recorded %s), gate %.0f%% on wall min\n\n",
		basePath, base.Recorded, candPath, cand.Recorded, threshold)
	fmt.Fprintf(&rep, "%-20s %6s  %14s  %14s  %8s  %10s  %s\n",
		"workload", "gate", "baseline min", "candidate min", "delta", "pprof ovh", "verdict")

	pass := true
	for _, c := range cand.Workloads {
		gate := "-"
		if c.Gated {
			gate = "gated"
		}
		overhead := "n/a"
		if c.ProfilerOverheadPct != nil {
			overhead = fmt.Sprintf("%+.1f%%", *c.ProfilerOverheadPct)
		}
		b, ok := baseByName[c.Name]
		if !ok {
			fmt.Fprintf(&rep, "%-20s %6s  %14s  %14v  %8s  %10s  %s\n",
				c.Name, gate, "-", time.Duration(c.WallMinNs), "-", overhead, "new (no baseline)")
			continue
		}
		delete(baseByName, c.Name)
		delta := float64(c.WallMinNs-b.WallMinNs) / float64(b.WallMinNs) * 100
		verdict := "info"
		if c.Gated {
			if delta > threshold {
				verdict = "FAIL"
				pass = false
			} else {
				verdict = "ok"
			}
		}
		fmt.Fprintf(&rep, "%-20s %6s  %14v  %14v  %+7.1f%%  %10s  %s\n",
			c.Name, gate, time.Duration(b.WallMinNs), time.Duration(c.WallMinNs), delta, overhead, verdict)
	}
	for name := range baseByName {
		fmt.Fprintf(&rep, "%-20s %6s  workload present in baseline but missing from candidate\n", name, "?")
	}
	if pass {
		rep.WriteString("\nresult: PASS — no gated workload regressed past the threshold\n")
	} else {
		fmt.Fprintf(&rep, "\nresult: FAIL — gated workload(s) regressed more than %.0f%% on wall min\n", threshold)
	}

	fmt.Print(rep.String())
	if reportPath != "" {
		if err := os.WriteFile(reportPath, []byte(rep.String()), 0o644); err != nil {
			return false, err
		}
	}
	return pass, nil
}

func readSnapshot(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != snapshotSchema {
		return snapshot{}, fmt.Errorf("%s: schema %q unsupported (want %q)", path, s.Schema, snapshotSchema)
	}
	if len(s.Workloads) == 0 {
		return snapshot{}, fmt.Errorf("%s: snapshot holds no workloads", path)
	}
	return s, nil
}
