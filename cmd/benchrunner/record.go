package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"
)

// snapshotSchema versions BENCH_3.json; bump on incompatible changes so
// bench-diff can refuse to compare across schemas.
const snapshotSchema = "benchrunner/v1"

// opRecord is one timed op: wall time, the process's CPU time consumed
// while it ran (user+system, all goroutines — sweeps fan out workers, so
// CPU > wall means parallelism, not error), and the allocation delta.
type opRecord struct {
	WallNs int64  `json:"wall_ns"`
	CPUNs  int64  `json:"cpu_ns"`
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
}

// workloadRecord is one workload's measured summary. Gating compares
// WallMinNs: best-of-N is the noise-robust statistic, since interference
// can only slow an op down, never speed the work itself up.
type workloadRecord struct {
	Name  string     `json:"name"`
	Gated bool       `json:"gated"`
	Desc  string     `json:"desc"`
	Ops   []opRecord `json:"ops"`

	WallMinNs   int64  `json:"wall_min_ns"`
	WallMeanNs  int64  `json:"wall_mean_ns"`
	WallP50Ns   int64  `json:"wall_p50_ns"`
	WallMaxNs   int64  `json:"wall_max_ns"`
	CPUMeanNs   int64  `json:"cpu_mean_ns"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`

	// Profiled re-run: the same ops with pprof CPU profiling active and
	// one heap profile written per op, timed inside the op window. The
	// overhead percentage is mean-vs-mean; small negatives are noise.
	ProfiledWallMeanNs  int64    `json:"profiled_wall_mean_ns,omitempty"`
	ProfilerOverheadPct *float64 `json:"profiler_overhead_pct,omitempty"`

	// Parallelism conditions in effect for the timed ops. GOMAXPROCS is
	// always recorded; Lanes and Workers only for lane-partitioned
	// workloads. bench-diff uses these to decide whether a speedup ratio
	// is meaningful on the recording host.
	GOMAXPROCS int `json:"gomaxprocs"`
	Lanes      int `json:"lanes,omitempty"`
	Workers    int `json:"workers,omitempty"`
}

// snapshot is the BENCH_3.json document.
type snapshot struct {
	Schema     string           `json:"schema"`
	Recorded   string           `json:"recorded"`
	GoVersion  string           `json:"go"`
	Iterations int              `json:"iterations"`
	// ParallelCapacity is the host's measured speedup on an embarrassingly
	// parallel spin load at GOMAXPROCS=4 (serial wall / parallel wall).
	// Containers often report NumCPU=1 while scheduling onto more cores,
	// so this is measured, not read from the runtime; bench-diff only
	// enforces parallel-vs-serial speedup gates when it is high enough.
	ParallelCapacity float64          `json:"parallel_capacity"`
	Workloads        []workloadRecord `json:"workloads"`
}

// runRecord measures every selected workload and writes the snapshot.
func runRecord(out string, names []string, iters int, profile bool) error {
	if iters < 1 {
		return fmt.Errorf("iterations must be ≥ 1 (got %d)", iters)
	}
	selected, err := selectBenches(names)
	if err != nil {
		return err
	}
	snap := snapshot{
		Schema:           snapshotSchema,
		Recorded:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		Iterations:       iters,
		ParallelCapacity: measureParallelCapacity(),
	}
	fmt.Fprintf(os.Stderr, "host parallel capacity %.2f× (spin test at GOMAXPROCS=4)\n", snap.ParallelCapacity)
	for _, b := range selected {
		rec, err := measureWorkload(b, iters, profile)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		snap.Workloads = append(snap.Workloads, rec)
		line := fmt.Sprintf("%-20s wall min %v mean %v  cpu %v  %d allocs/op",
			rec.Name, time.Duration(rec.WallMinNs), time.Duration(rec.WallMeanNs),
			time.Duration(rec.CPUMeanNs), rec.AllocsPerOp)
		if rec.ProfilerOverheadPct != nil {
			line += fmt.Sprintf("  pprof overhead %+.1f%%", *rec.ProfilerOverheadPct)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snapshot written to %s\n", out)
	return nil
}

// measureWorkload preps a workload once, runs one untimed warm-up op,
// then iters timed ops — and, when profiling, iters more with pprof
// CPU+heap collection active to measure the profilers' cost.
func measureWorkload(b bench, iters int, profile bool) (workloadRecord, error) {
	if b.needGOMAXPROCS > 0 && runtime.GOMAXPROCS(0) < b.needGOMAXPROCS {
		// Containerized hosts often report NumCPU=1 while offering more
		// parallel capacity; the lane workloads need real scheduler
		// threads to mean anything. Restored after the workload.
		prev := runtime.GOMAXPROCS(b.needGOMAXPROCS)
		defer runtime.GOMAXPROCS(prev)
	}
	op, cleanup, err := b.prep()
	if err != nil {
		return workloadRecord{}, err
	}
	if cleanup != nil {
		defer cleanup()
	}

	// Warm-up: page in code paths and, for warm-memo workloads, populate
	// the scheduler memo the timed ops are meant to hit.
	if b.preOp != nil {
		b.preOp()
	}
	if err := op(); err != nil {
		return workloadRecord{}, err
	}

	ops, err := timeOps(b, op, iters, false)
	if err != nil {
		return workloadRecord{}, err
	}
	rec := summarize(b, ops)

	if profile {
		if err := pprof.StartCPUProfile(io.Discard); err != nil {
			return workloadRecord{}, err
		}
		profiled, perr := timeOps(b, op, iters, true)
		pprof.StopCPUProfile()
		if perr != nil {
			return workloadRecord{}, perr
		}
		var sum int64
		for _, o := range profiled {
			sum += o.WallNs
		}
		rec.ProfiledWallMeanNs = sum / int64(len(profiled))
		pct := float64(rec.ProfiledWallMeanNs-rec.WallMeanNs) / float64(rec.WallMeanNs) * 100
		rec.ProfilerOverheadPct = &pct
	}
	return rec, nil
}

// timeOps runs iters timed windows of reps op executions each (see
// bench.reps), bracketed by CPU and allocation reads; recorded figures
// are per rep. With heapProfile set, each window also writes one heap
// profile inside the timed region — the periodic collection cost a
// profiling harness pays, amortized like a real collector's cadence.
func timeOps(b bench, op func() error, iters int, heapProfile bool) ([]opRecord, error) {
	reps := b.reps
	if reps < 1 {
		reps = 1
	}
	// Settle the heap so one workload's garbage does not bill the next
	// workload's timed windows with its collection.
	runtime.GC()
	ops := make([]opRecord, 0, iters)
	for i := 0; i < iters; i++ {
		if b.preOp != nil {
			b.preOp()
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		cpu0 := cpuTime()
		start := time.Now()
		var err error
		for r := 0; r < reps && err == nil; r++ {
			err = op()
		}
		if err == nil && heapProfile {
			err = pprof.WriteHeapProfile(io.Discard)
		}
		wall := time.Since(start)
		cpu1 := cpuTime()
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, err
		}
		ops = append(ops, opRecord{
			WallNs: wall.Nanoseconds() / int64(reps),
			CPUNs:  int64(cpu1-cpu0) / int64(reps),
			Allocs: (after.Mallocs - before.Mallocs) / uint64(reps),
			Bytes:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
		})
	}
	return ops, nil
}

// summarize folds per-op records into the workload summary.
func summarize(b bench, ops []opRecord) workloadRecord {
	rec := workloadRecord{
		Name: b.name, Gated: b.gated, Desc: b.desc, Ops: ops,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Lanes: b.lanes, Workers: b.workers,
	}
	walls := make([]int64, len(ops))
	var wallSum, cpuSum int64
	var allocSum, byteSum uint64
	for i, o := range ops {
		walls[i] = o.WallNs
		wallSum += o.WallNs
		cpuSum += o.CPUNs
		allocSum += o.Allocs
		byteSum += o.Bytes
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	n := int64(len(ops))
	rec.WallMinNs = walls[0]
	rec.WallMaxNs = walls[len(walls)-1]
	rec.WallP50Ns = walls[len(walls)/2]
	rec.WallMeanNs = wallSum / n
	rec.CPUMeanNs = cpuSum / n
	rec.AllocsPerOp = allocSum / uint64(n)
	rec.BytesPerOp = byteSum / uint64(n)
	return rec
}
