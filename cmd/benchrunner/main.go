// Command benchrunner is the continuous perf harness: it executes named
// wall-clock workloads end to end — the Table 1 canary run, the fig9-13
// sweep suite cold and warm, the chaos experiment, the big-topology
// lane run (serial and parallel), and an in-process rmserved
// round-trip — recording per-op wall, CPU, and allocation figures plus
// the overhead of running the same workload under pprof CPU+heap
// profiling, and writes the snapshot to BENCH_3.json. Each snapshot
// also records the host's measured parallel capacity and each
// workload's GOMAXPROCS, so the -diff lane-speedup gate knows whether
// a ratio recorded on this host is meaningful.
//
// Usage:
//
//	benchrunner -out BENCH_3.json            # record (default mode)
//	benchrunner -iterations 3 -workloads table1-canary,ext-chaos
//	benchrunner -diff -baseline BENCH_3.json -candidate new.json \
//	    -threshold 10 -report bench-diff-report.txt
//
// In -diff mode the candidate's gated workloads are compared against the
// baseline's on best-of-N wall time (min is the noise-robust statistic:
// a machine can only add latency, never remove work) and the exit status
// is non-zero if any gated workload regressed past the threshold. The
// Makefile wraps both modes as bench-record and bench-diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		diff       = flag.Bool("diff", false, "compare -candidate against -baseline instead of recording")
		out        = flag.String("out", "BENCH_3.json", "record mode: output snapshot path")
		iterations = flag.Int("iterations", 10, "record mode: timed ops per workload (plus one untimed warm-up)")
		only       = flag.String("workloads", "", "record mode: comma-separated workload names (default: all)")
		noProfile  = flag.Bool("no-profile", false, "record mode: skip the profiled re-run (overhead reported as null)")
		baseline   = flag.String("baseline", "BENCH_3.json", "diff mode: committed snapshot to compare against")
		candidate  = flag.String("candidate", "", "diff mode: freshly recorded snapshot")
		threshold  = flag.Float64("threshold", 10, "diff mode: max tolerated wall-time regression on gated workloads, percent")
		report     = flag.String("report", "", "diff mode: also write the report to this file")
	)
	flag.Parse()

	if *diff {
		if *candidate == "" {
			fatal(fmt.Errorf("-diff requires -candidate"))
		}
		ok, err := runDiff(*baseline, *candidate, *threshold, *report)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	if err := runRecord(*out, names, *iterations, !*noProfile); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
