package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// The big-topology workload: 8 network segments (lanes) of 8 processors
// each, loaded with six tasks per segment drawn from two period classes
// (the Table 1 second, and a half-period class at twice the rate). It is
// recorded twice — once with the serial lane driver and once with one
// worker per lane — so bench-diff can gate the parallel speedup.
const (
	bigTopologyLanes    = 8
	bigTopologyPeriods  = 256 // anchor pattern length; sizes the serial op
	bigTopologyNumTasks = 6 * bigTopologyLanes
)

// bigTopologyPattern varies demand shape by task index so segments adapt
// on decorrelated schedules rather than in lockstep. periods is the
// pattern length: the fast period class gets twice as many so both
// classes span the same simulated horizon.
func bigTopologyPattern(i, periods int) workload.Pattern {
	switch i % 3 {
	case 0:
		return workload.NewStep(500, 6000, periods, periods/2)
	case 1:
		return workload.NewTriangular(500, 5000, periods, 4)
	default:
		return workload.NewConstant(2500, periods)
	}
}

func bigTopologySetups() ([]core.TaskSetup, error) {
	setups := make([]core.TaskSetup, bigTopologyNumTasks)
	for i := range setups {
		// Second period class: twice the rate, twice the pattern length.
		// With nil Homes, task i lands on lane i mod lanes, so every lane
		// gets three tasks from each class.
		fast := i >= bigTopologyNumTasks/2
		periods := bigTopologyPeriods
		if fast {
			periods *= 2
		}
		s, err := experiment.BenchmarkSetup(bigTopologyPattern(i, periods))
		if err != nil {
			return nil, err
		}
		s.Spec.Name = fmt.Sprintf("BT%02d", i)
		if fast {
			s.Spec.Period /= 2
			s.Spec.Deadline /= 2
		}
		setups[i] = s
	}
	return setups, nil
}

// bigTopologyOp builds the 64-node, 8-lane run with the given worker
// count. workers=1 is the serial lane driver; workers=bigTopologyLanes
// is one worker per lane.
func bigTopologyOp(workers int) (func() error, func(), error) {
	cfg := core.DefaultConfig()
	cfg.NumNodes = bigTopologyLanes * 8
	cfg.Lanes = bigTopologyLanes
	cfg.Parallel = workers
	setups, err := bigTopologySetups()
	if err != nil {
		return nil, nil, err
	}
	return func() error {
		_, err := core.Run(cfg, core.Predictive, setups)
		return err
	}, nil, nil
}

// spinSink defeats dead-code elimination of the capacity spin loops.
var spinSink uint64

func spinWork(n int) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// measureParallelCapacity runs an embarrassingly parallel spin load at
// GOMAXPROCS≥4 and reports serial wall / parallel wall — the host's real
// capacity to run four goroutines at once. runtime.NumCPU is useless for
// this inside containers (it reads the cgroup's view, which is often 1
// while the scheduler happily runs on more cores), so we measure.
func measureParallelCapacity() float64 {
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const shards = 4
	const iters = 30_000_000
	spinSink += spinWork(iters) // warm up the loop and the scheduler

	start := time.Now()
	for s := 0; s < shards; s++ {
		spinSink += spinWork(iters)
	}
	serial := time.Since(start)

	results := make([]uint64, shards)
	var wg sync.WaitGroup
	start = time.Now()
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = spinWork(iters)
		}(s)
	}
	wg.Wait()
	parallel := time.Since(start)
	for _, r := range results {
		spinSink += r
	}
	if parallel <= 0 {
		return 1
	}
	return float64(serial) / float64(parallel)
}
