//go:build unix

package main

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative user+system CPU time. Deltas
// across an op therefore include every goroutine — for parallel sweeps,
// CPU well above wall time is the worker pool doing its job.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
