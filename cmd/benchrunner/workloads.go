package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/server"
	"repro/internal/workload"
)

// bench is one named end-to-end workload. prep runs once (untimed) and
// returns the op the harness times plus an optional cleanup; preOp runs
// untimed before every op — it is where cold-cache workloads forget the
// scheduler memo, so the timed region measures the work, not the reset.
type bench struct {
	name  string
	gated bool
	desc  string
	// reps batches this many op executions inside one timed window and
	// reports per-rep figures — microsecond-scale ops are unmeasurable
	// one at a time (clock granularity and GC pauses swamp the signal).
	// 0 means 1.
	reps  int
	preOp func()
	prep  func() (op func() error, cleanup func(), err error)

	// Parallelism conditions, recorded into the workload's snapshot
	// metadata so bench-diff reports are unambiguous about them.
	// needGOMAXPROCS, when > 0, raises GOMAXPROCS to at least that for
	// the timed ops (restored afterwards) — containerized hosts often
	// report NumCPU=1 while offering more parallel capacity, and the
	// lane workloads are meaningless at one scheduler thread.
	lanes          int
	workers        int
	needGOMAXPROCS int
}

// figSuiteIDs is the sweep suite shared by the cold and warm workloads:
// the five evaluation figures that dominate rmexperiments wall time.
var figSuiteIDs = []string{"fig9", "fig10", "fig11", "fig12", "fig13"}

// figSuiteOp renders the whole suite (quick sweeps) to io.Discard, so
// the op covers simulation, scheduling, and table/chart rendering.
func figSuiteOp() func() error {
	ctx := experiment.Context{Quick: true}
	return func() error {
		for _, id := range figSuiteIDs {
			e, err := experiment.ByID(id)
			if err != nil {
				return err
			}
			out, err := e.Run(ctx)
			if err != nil {
				return err
			}
			if err := out.Render(io.Discard); err != nil {
				return err
			}
		}
		return nil
	}
}

// benches returns every named workload in execution order. The rmserved
// round-trip goes last: server.New installs its wall-clock observer on
// the process-global scheduler, and running it last keeps the other
// workloads' scheduler hot path observer-free (the shipped default).
func benches() []bench {
	return []bench{
		{
			name:  "table1-canary",
			gated: true,
			desc:  "one Table 1 baseline run (constant workload 500, 2 periods) through core.Run",
			reps:  200, // ~8µs per run; batch to a ~2ms timed window
			prep: func() (func() error, func(), error) {
				setup, err := experiment.BenchmarkSetup(workload.NewConstant(500, 2))
				if err != nil {
					return nil, nil, err
				}
				cfg := core.DefaultConfig()
				setups := []core.TaskSetup{setup}
				return func() error {
					_, err := core.Run(cfg, core.Predictive, setups)
					return err
				}, nil, nil
			},
		},
		{
			name:  "fig9-13-cold",
			gated: true,
			desc:  "fig9-fig13 quick sweep suite with a cold scheduler memo per op",
			preOp: experiment.ResetSweepCache,
			prep: func() (func() error, func(), error) {
				return figSuiteOp(), nil, nil
			},
		},
		{
			name:  "fig9-13-warm",
			gated: false, // sub-millisecond memo replay; too noisy to gate
			desc:  "fig9-fig13 quick sweep suite served entirely from the warm memo",
			prep: func() (func() error, func(), error) {
				return figSuiteOp(), nil, nil
			},
		},
		{
			name:  "ext-chaos",
			gated: true,
			desc:  "fault-intensity sweep (quick) with a cold scheduler memo per op",
			preOp: experiment.ResetSweepCache,
			prep: func() (func() error, func(), error) {
				e, err := experiment.ByID("ext-chaos")
				if err != nil {
					return nil, nil, err
				}
				ctx := experiment.Context{Quick: true}
				return func() error {
					out, err := e.Run(ctx)
					if err != nil {
						return err
					}
					return out.Render(io.Discard)
				}, nil, nil
			},
		},
		{
			name:  "ext-tournament",
			gated: true,
			desc:  "policy tournament (quick grid, every registered policy) with a cold scheduler memo per op",
			preOp: experiment.ResetSweepCache,
			prep: func() (func() error, func(), error) {
				e, err := experiment.ByID("ext-tournament")
				if err != nil {
					return nil, nil, err
				}
				ctx := experiment.Context{Quick: true}
				return func() error {
					out, err := e.Run(ctx)
					if err != nil {
						return err
					}
					return out.Render(io.Discard)
				}, nil, nil
			},
		},
		{
			name:           "big-topology-serial",
			gated:          true,
			desc:           "8-segment × 8-processor lane run (16 tasks, two periods), serial lane driver",
			lanes:          bigTopologyLanes,
			workers:        1,
			needGOMAXPROCS: 4, // same scheduler state as the parallel twin
			prep:           func() (func() error, func(), error) { return bigTopologyOp(1) },
		},
		{
			name:           "big-topology-parallel",
			gated:          true,
			desc:           "8-segment × 8-processor lane run (16 tasks, two periods), one worker per lane",
			lanes:          bigTopologyLanes,
			workers:        bigTopologyLanes,
			needGOMAXPROCS: 4,
			prep:           func() (func() error, func(), error) { return bigTopologyOp(bigTopologyLanes) },
		},
		{
			name:  "rmserved-roundtrip",
			gated: false, // dominated by HTTP+poll latency; informational
			desc:  "submit + wait of one memoized run against an in-process rmserved over real HTTP",
			prep: func() (func() error, func(), error) {
				quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
				srv, err := server.New(server.Options{Logger: quiet})
				if err != nil {
					return nil, nil, err
				}
				ts := httptest.NewServer(srv)
				cl := client.New(ts.URL)
				cl.PollInterval = 2 * time.Millisecond
				seed := uint64(0xbe9c)
				req := api.RunRequest{
					SchemaVersion: api.SchemaVersion,
					Algorithm:     api.AlgPredictive,
					Seed:          &seed,
					Task: api.TaskSpec{
						Pattern: api.Pattern{Kind: api.PatternCustom, Label: "benchrunner", Values: []int{500, 900, 1300, 900, 500}},
					},
				}
				op := func() error {
					j, err := cl.SubmitRun(context.Background(), req)
					if err != nil {
						return err
					}
					done, err := cl.Wait(context.Background(), j.ID)
					if err != nil {
						return err
					}
					if done.State != api.JobDone {
						return fmt.Errorf("round-trip job ended %q", done.State)
					}
					return nil
				}
				cleanup := func() {
					ts.Close()
					// server.New hooked its metrics into the global
					// scheduler; detach so later runs stay unobserved.
					experiment.SetWallObserver(nil)
				}
				return op, cleanup, nil
			},
		},
		{
			name:  "session-fanout",
			gated: false, // paced streaming: wall time is dominated by the configured rate
			desc: "one paced live session (30 samples at ≤100 updates/s) fanned out to 1000 concurrent SSE subscribers " +
				"over real HTTP; every subscriber folds 31 state frames to the exact final state, so " +
				"delivered updates/sec = 31000 / wall",
			prep: func() (func() error, func(), error) {
				quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
				srv, err := server.New(server.Options{Logger: quiet})
				if err != nil {
					return nil, nil, err
				}
				ts := httptest.NewServer(srv)
				cl := client.New(ts.URL)
				seed := uint64(0xfa0)
				req := api.SessionRequest{
					SchemaVersion: api.SchemaVersion,
					Algorithm:     api.AlgPredictive,
					Seed:          &seed,
					Task: api.TaskSpec{
						Pattern: api.Pattern{Kind: api.PatternConstant, Value: 500, Periods: 30},
					},
					SampleMS:  500, // 30 samples across the 15s sim
					MaxRateHz: 100, // pace so subscribers stream live, not from replay
				}
				const subscribers = 1000
				op := func() error {
					sess, err := cl.CreateSession(context.Background(), req)
					if err != nil {
						return err
					}
					errs := make(chan error, subscribers)
					var wg sync.WaitGroup
					for i := 0; i < subscribers; i++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							st, stamp, err := cl.StreamSession(context.Background(), sess.ID, nil)
							switch {
							case err != nil:
								errs <- err
							case stamp.State != api.SessionDone:
								errs <- fmt.Errorf("session ended %q", stamp.State)
							case st.Metrics.Completed != 30:
								errs <- fmt.Errorf("fold completed %d periods, want 30", st.Metrics.Completed)
							}
						}()
					}
					wg.Wait()
					select {
					case err := <-errs:
						return err
					default:
						return nil
					}
				}
				cleanup := func() {
					ts.Close()
					experiment.SetWallObserver(nil)
				}
				return op, cleanup, nil
			},
		},
	}
}

// selectBenches resolves a -workloads filter, preserving execution order.
func selectBenches(names []string) ([]bench, error) {
	all := benches()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var picked []bench
	for _, b := range all {
		if want[b.name] {
			picked = append(picked, b)
			delete(want, b.name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("unknown workload %q (see benches() in cmd/benchrunner)", n)
	}
	return picked, nil
}
