//go:build !unix

package main

import "time"

// cpuTime is unavailable off unix; records report cpu_ns = 0 there.
func cpuTime() time.Duration { return 0 }
