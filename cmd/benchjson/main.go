// Command benchjson converts `go test -bench` output into a labelled JSON
// record, merging into an existing file so successive snapshots (e.g. a
// pre-optimization baseline and the current state) live side by side.
//
// The raw benchmark lines are preserved verbatim under each label, so any
// snapshot stays benchstat-comparable:
//
//	go test -run '^$' -bench Table1 -benchmem -count 5 . | benchjson -label current -out BENCH_1.json
//	jq -r '.labels.baseline.lines[]' BENCH_1.json > old.txt
//	jq -r '.labels.current.lines[]'  BENCH_1.json > new.txt
//	benchstat old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Run is one parsed benchmark result line.
type Run struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labelled benchmark recording.
type Snapshot struct {
	Recorded string   `json:"recorded"`
	Goos     string   `json:"goos,omitempty"`
	Goarch   string   `json:"goarch,omitempty"`
	CPU      string   `json:"cpu,omitempty"`
	Lines    []string `json:"lines"`
	Runs     []Run    `json:"runs"`
}

// File is the merged on-disk layout.
type File struct {
	Labels map[string]*Snapshot `json:"labels"`
}

func main() {
	var (
		label = flag.String("label", "current", "name for this snapshot within the output file")
		out   = flag.String("out", "BENCH_1.json", "JSON file to merge the snapshot into")
	)
	flag.Parse()

	snap := &Snapshot{Recorded: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			snap.Lines = append(snap.Lines, line)
			if r, ok := parseLine(line); ok {
				snap.Runs = append(snap.Runs, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Runs) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	f := &File{Labels: map[string]*Snapshot{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, f); err != nil {
			fatal(fmt.Errorf("existing %s is not a benchjson file: %w", *out, err))
		}
		if f.Labels == nil {
			f.Labels = map[string]*Snapshot{}
		}
	}
	f.Labels[*label] = snap

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: recorded %d run(s) under label %q in %s\n", len(snap.Runs), *label, *out)
}

// parseLine parses one `BenchmarkX  N  123 ns/op  45 B/op  6 allocs/op
// 7.8 custom-unit` result line.
func parseLine(line string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Run{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	r := Run{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
