// Command rmexperiments regenerates every table and figure of the paper's
// evaluation (plus the extension experiments indexed in DESIGN.md §4).
//
// Usage:
//
//	rmexperiments                 # run everything, print to stdout
//	rmexperiments -run fig9       # run one experiment
//	rmexperiments -list           # list experiment ids
//	rmexperiments -out results/   # also write per-experiment .txt and .csv
//	rmexperiments -quick          # trimmed sweeps (smoke run)
//	rmexperiments -seeds 5        # Monte Carlo: 5 replications per sweep cell, tables gain ±95% CI columns
//	rmexperiments -cache-dir .rmcache  # persistent run cache: warm re-renders skip simulation
//	rmexperiments -remote http://host:8080  # delegate wire-expressible runs to an rmserved daemon
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/cliflag"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resil"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		run       = flag.String("run", "", "run a single experiment id (default: all)")
		out       = flag.String("out", "", "directory to write per-experiment .txt and .csv files")
		md        = flag.String("md", "", "write a single Markdown report to this file")
		quick     = flag.Bool("quick", false, "trimmed sweeps for a fast smoke run")
		parallel  = cliflag.Parallel(flag.CommandLine)
		seeds     = cliflag.Seeds(flag.CommandLine)
		cacheDir  = cliflag.CacheDir(flag.CommandLine)
		policies  = cliflag.Policies(flag.CommandLine)
		remote    = flag.String("remote", "", "rmserved base URL; wire-expressible runs are delegated to the daemon instead of simulated locally")
		checkDet  = flag.Bool("check-determinism", false, "run each experiment twice (serial, then parallel with a cold cache) and fail unless the outputs are byte-identical")
		logFormat = cliflag.LogFormat(flag.CommandLine)
	)
	flag.Parse()

	// Diagnostics go to the structured logger on stderr; stdout carries
	// only the rendered tables, figures, and the scheduler summary, so
	// piping results stays clean.
	log, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(log)

	if *remote != "" {
		cl := client.New(*remote)
		cl.Logger = log
		// One failed poll must not abort a whole sweep. The client already
		// retries individual requests; this outer loop handles the daemon
		// *losing* the job entirely (restart without -data-dir → 404 on
		// poll) or staying unreachable past the per-request budget, by
		// resubmitting the run with backoff — submissions are idempotent by
		// fingerprint, so the worst case is a cache hit on the daemon side.
		resubmit := resil.Backoff{Attempts: 4, Base: 500 * time.Millisecond, Max: 10 * time.Second}
		experiment.SetRemoteRunner(func(ctx context.Context, req api.RunRequest) (experiment.RunOutcome, error) {
			var out experiment.RunOutcome
			err := resil.Do(ctx, &resubmit, nil, func(attempt int) error {
				res, err := cl.RunSync(ctx, req)
				if err != nil {
					var ae *client.APIError
					lost := errors.As(err, &ae) && ae.Code == api.CodeNotFound
					if client.Retryable(err) || lost {
						log.Warn("remote run lost or daemon unreachable; resubmitting",
							"attempt", attempt, "error", err.Error())
						return resil.Transient(err)
					}
					return err
				}
				out = experiment.OutcomeFromAPI(res)
				return nil
			})
			return out, err
		})
		log.Info("remote mode: delegating wire-expressible runs", "daemon", *remote)
	}

	if *cacheDir != "" && !*checkDet {
		cache, err := experiment.OpenDiskCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		experiment.SetDiskCache(cache)
	}
	if *cacheDir != "" && *checkDet {
		// A determinism audit must re-execute every simulation; serving
		// runs from the persistent cache would compare the cache with
		// itself, so the cache is bypassed for the audit.
		log.Info("-check-determinism bypasses -cache-dir (the audit must re-simulate)")
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-14s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	var todo []experiment.Experiment
	if *run != "" {
		e, err := experiment.ByID(*run)
		if err != nil {
			fatal(err)
		}
		todo = []experiment.Experiment{e}
	} else {
		todo = experiment.All()
	}

	if *checkDet {
		checkDeterminism(todo, *quick, *parallel)
		return
	}

	polSubset, err := cliflag.ParsePolicies(*policies)
	if err != nil {
		fatal(err)
	}
	ctx := experiment.Context{Parallelism: *parallel, Quick: *quick, Seeds: *seeds, Policies: polSubset}
	wallStart := time.Now()
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	var report strings.Builder
	if *md != "" {
		fmt.Fprintf(&report, "# Reproduction report\n\nGenerated %s by `rmexperiments`.\n\n",
			time.Now().UTC().Format("2006-01-02 15:04 UTC"))
	}
	for _, e := range todo {
		start := time.Now()
		output, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("=== %s (%s) — %s [%v] ===\n\n", e.ID, e.Paper, e.Title, time.Since(start).Round(time.Millisecond))
		if err := output.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if *out != "" {
			if err := writeFiles(*out, output); err != nil {
				fatal(err)
			}
		}
		if *md != "" {
			fmt.Fprintf(&report, "## %s — %s\n\n%s\n\n```text\n", e.ID, e.Paper, e.Title)
			if err := output.Render(&report); err != nil {
				fatal(err)
			}
			report.WriteString("```\n\n")
		}
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(report.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("markdown report written to %s\n", *md)
	}
	s := experiment.SchedulerStats()
	fmt.Printf("scheduler: %d runs requested — %d deduped in flight, %d memory hits, %d disk hits, %d simulated",
		s.Requested, s.Deduped, s.MemoryHits, s.DiskHits, s.Simulated)
	if s.Remote > 0 {
		fmt.Printf(", %d remote", s.Remote)
	}
	if s.Cancelled > 0 {
		fmt.Printf(", %d cancelled", s.Cancelled)
	}
	fmt.Printf(" — wall-clock %v\n", time.Since(wallStart).Round(time.Millisecond))
}

// checkDeterminism renders every experiment twice — once with serial
// simulations, once with the full worker pool — resetting the sweep
// cache before each run so both actually execute. Any byte difference
// in the rendered tables, charts, or CSVs is a determinism regression
// (scheduling order leaking into results) and exits non-zero.
func checkDeterminism(todo []experiment.Experiment, quick bool, parallel int) {
	failed := false
	for _, e := range todo {
		start := time.Now()
		serial, err := fingerprint(e, experiment.Context{Parallelism: 1, Quick: quick})
		if err != nil {
			fatal(fmt.Errorf("%s (serial): %w", e.ID, err))
		}
		concurrent, err := fingerprint(e, experiment.Context{Parallelism: parallel, Quick: quick})
		if err != nil {
			fatal(fmt.Errorf("%s (parallel): %w", e.ID, err))
		}
		if serial == concurrent {
			fmt.Printf("ok   %-14s serial == parallel (%d bytes) [%v]\n",
				e.ID, len(serial), time.Since(start).Round(time.Millisecond))
		} else {
			failed = true
			fmt.Printf("FAIL %-14s serial and parallel outputs differ (%d vs %d bytes)\n",
				e.ID, len(serial), len(concurrent))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// fingerprint runs one experiment against a cold sweep cache and returns
// its full rendered output plus every table's CSV.
func fingerprint(e experiment.Experiment, ctx experiment.Context) (string, error) {
	experiment.ResetSweepCache()
	out, err := e.Run(ctx)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := out.Render(&b); err != nil {
		return "", err
	}
	for _, t := range out.Tables {
		if err := t.WriteCSV(&b); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func writeFiles(dir string, o experiment.Output) error {
	var txt strings.Builder
	if err := o.Render(&txt); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, o.ID+".txt"), []byte(txt.String()), 0o644); err != nil {
		return err
	}
	for i, t := range o.Tables {
		name := o.ID
		if len(o.Tables) > 1 {
			name = fmt.Sprintf("%s-%d", o.ID, i+1)
		}
		var csv strings.Builder
		if err := t.WriteCSV(&csv); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmexperiments:", err)
	os.Exit(1)
}
