// Command rmsim runs a single adaptive resource-management simulation and
// prints its metrics, adaptation events, and (optionally) the per-period
// trace as CSV.
//
// Usage:
//
//	rmsim -alg predictive -pattern triangular -max 12000 -periods 120
//	rmsim -alg non-predictive -pattern step -max 8000 -trace trace.csv
//	rmsim -alg predictive -telemetry out.json -chrome trace.json
//	rmsim -alg predictive -http :9090   # then browse /metrics, /snapshot.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/dynbench"
	"repro/internal/experiment"
	"repro/internal/export"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		algFlag  = cliflag.Alg(flag.CommandLine)
		pattern  = flag.String("pattern", "triangular", "workload: triangular | increasing | decreasing | step | burst | sinusoid | constant")
		wlFile   = flag.String("workload-file", "", "replay a recorded trace: one tracks-per-period integer per line ('#' comments allowed); overrides -pattern")
		min      = flag.Int("min", 500, "minimum workload (tracks per period)")
		max      = flag.Int("max", 12000, "maximum workload (tracks per period)")
		periods  = flag.Int("periods", 120, "number of periods to simulate")
		lanes    = flag.Int("lanes", 0, "partition the run into this many network segments (lanes): scales the cluster to lanes×6 nodes with one task copy per lane; < 2 = the classic single-segment run")
		parallel = flag.Int("parallel", 0, "lane workers: 0 = one per CPU, 1 = serial lane driver, N = worker pool (results are byte-identical for every value; needs -lanes ≥ 2)")
		seed     = cliflag.Seed(flag.CommandLine, 1)
		traceOut = flag.String("trace", "", "write the per-period trace CSV to this file")
		events   = flag.Bool("events", false, "print every adaptation event")
		jsonOut  = flag.String("json", "", "write the full run as JSON to this file ('-' for stdout)")
		telOut   = flag.String("telemetry", "", "write the telemetry snapshot JSON (latency/slack histograms, forecast MAPE) to this file ('-' for stdout)")
		chrome   = flag.String("chrome", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		httpAddr = flag.String("http", "", "after the run, serve live telemetry on this address (/metrics, /snapshot.json, /trace.json) until interrupted")
		force    = flag.Bool("force", false, "overwrite existing output files")
		mtbf     = flag.Duration("mtbf", 0, "stochastic node crashes: mean time between failures per node (enables the hardened manager)")
		mttr     = flag.Duration("mttr", 8*time.Second, "mean time to repair for -mtbf crashes")
		drop     = flag.Float64("drop", 0, "per-message drop probability on the shared segment, 0 ≤ p < 1 (enables the hardened manager)")
		logFmt   = cliflag.LogFormat(flag.CommandLine)

		// Policy knobs (0 = the registered default; see internal/policy).
		stretchMax    = flag.Float64("stretch-max", 0, "period-stretch: elastic bound on the period multiplier (0 = default 2.0)")
		stretchStep   = flag.Float64("stretch-step", 0, "period-stretch: per-period stretch increment (0 = default 0.25)")
		stretchTarget = flag.Float64("stretch-target", 0, "period-stretch: utilization target of the elastic plan (0 = default 0.8)")
		shedMandatory = flag.Float64("shed-mandatory", 0, "imprecise-shed: mandatory fraction never shed (0 = default 0.5)")
		shedLevels    = flag.Int("shed-levels", 0, "imprecise-shed: optional-part shedding levels (0 = default 4)")
	)
	var fails faultList
	flag.Var(&fails, "fail", "inject a crash: node@at or node@at+duration, e.g. -fail 2@10.2s+15s (repeatable; omitted duration = permanent)")
	flag.Parse()

	// Simulation results print to stdout; diagnostics use the shared
	// structured logger on stderr like every other binary.
	logger, logErr := obs.NewLogger(os.Stderr, *logFmt, slog.LevelInfo)
	if logErr != nil {
		fatal(logErr)
	}
	slog.SetDefault(logger)

	alg := core.Algorithm(*algFlag)
	if !core.ValidAlgorithm(alg) {
		fatal(fmt.Errorf("unknown algorithm %q (registered: %s)", *algFlag, core.AlgorithmNames()))
	}
	var p workload.Pattern
	var err error
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fatal(err)
		}
		values, perr := workload.ParseSeries(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		p = workload.NewCustom(*wlFile, values)
	} else {
		p, err = buildPattern(*pattern, *min, *max, *periods)
		if err != nil {
			fatal(err)
		}
	}
	// Refuse clobbers before the run, not after it: losing a finished
	// simulation to a write error is pointless when the check is free.
	if !*force {
		for _, path := range []string{*traceOut, *jsonOut, *telOut, *chrome} {
			if path == "" || path == "-" {
				continue
			}
			if _, err := os.Stat(path); err == nil {
				fatal(fmt.Errorf("%s exists; pass -force to overwrite", path))
			}
		}
	}
	setup, err := experiment.BenchmarkSetup(p)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Faults = append(cfg.Faults, fails...)
	if *mtbf > 0 {
		cfg.Chaos = chaos.Config{
			NodeMTBF: sim.Time(mtbf.Nanoseconds()),
			NodeMTTR: sim.Time(mttr.Nanoseconds()),
			MaxDown:  cfg.NumNodes - 1,
		}
	}
	cfg.Network.DropProb = *drop
	cfg.Policy = policy.Config{
		Stretch: policy.StretchConfig{MaxFactor: *stretchMax, Step: *stretchStep, UtilTarget: *stretchTarget},
		Shed:    policy.ShedConfig{MandatoryFraction: *shedMandatory, Levels: *shedLevels},
	}
	// Stochastic faults and message loss are only survivable with the
	// hardened manager; scripted -fail crashes stay on the classic path.
	if *mtbf > 0 || *drop > 0 {
		cfg.Degradation = core.HardenedDegradation()
	}
	if *telOut != "" || *chrome != "" || *httpAddr != "" {
		cfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	}
	setups := []core.TaskSetup{setup}
	if *lanes >= 2 {
		if cfg.Telemetry.Enabled() {
			fatal(fmt.Errorf("-lanes %d cannot be combined with telemetry outputs (per-lane recorders cannot be merged)", *lanes))
		}
		// One segment of the default size per lane, each running its own
		// copy of the task (nil Homes sends copy l to lane l).
		cfg.NumNodes *= *lanes
		cfg.Lanes = *lanes
		cfg.Parallel = *parallel
		setups = make([]core.TaskSetup, *lanes)
		for l := range setups {
			s := setup
			s.Spec.Name = fmt.Sprintf("%s-L%d", setup.Spec.Name, l)
			setups[l] = s
		}
	}
	// Validate at the CLI boundary so a misconfigured run reports every
	// invalid field at once instead of failing on the first.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	res, err := core.Run(cfg, alg, setups)
	if err != nil {
		fatal(err)
	}

	m := res.Metrics
	fmt.Printf("algorithm        %s\n", alg)
	fmt.Printf("pattern          %s over %d periods\n", p.Name(), p.Periods())
	if cfg.Lanes >= 2 {
		// Deliberately silent about -parallel: worker count is execution
		// strategy, and the output must be byte-identical for every value.
		fmt.Printf("lanes            %d × %d nodes\n", cfg.Lanes, cfg.NumNodes/cfg.Lanes)
	}
	fmt.Printf("completed        %d/%d instances\n", m.Completed, m.Periods)
	fmt.Printf("missed deadlines %d (%.2f%%)\n", m.Missed, m.MissedPct())
	fmt.Printf("mean CPU util    %.2f%%\n", m.CPUUtilPct())
	fmt.Printf("mean net util    %.2f%%\n", m.NetUtilPct())
	fmt.Printf("mean replicas    %.2f of %g (%.1f%% use)\n", m.MeanReplicas, m.MaxReplicas, m.ReplicaUsePct())
	fmt.Printf("adaptations      %d replications, %d shutdowns, %d allocation failures\n",
		m.Replications, m.Shutdowns, m.AllocFailures)
	fmt.Printf("combined metric  C = %.2f\n", m.Combined())
	if m.Crashes > 0 || m.DroppedMessages > 0 || m.Retransmissions > 0 {
		fmt.Printf("chaos            %d crashes, %d recoveries, %d msgs dropped, %d retransmitted",
			m.Crashes, m.Recoveries, m.DroppedMessages, m.Retransmissions)
		if m.MeanRecoveryMS > 0 {
			fmt.Printf(", mean recovery %.1f ms", m.MeanRecoveryMS)
		}
		fmt.Println()
	}
	fmt.Printf("events fired     %d (identical seeds must match exactly)\n", res.EventsFired)

	if len(res.Records) > 0 {
		lat := make([]float64, len(res.Records))
		for i, r := range res.Records {
			lat[i] = r.EndToEnd().Milliseconds()
		}
		s := stats.Summarize(lat)
		fmt.Printf("latency (ms)     p50=%.1f p95=%.1f max=%.1f (deadline %v)\n",
			s.P50, s.P95, s.Max, dynbench.Deadline)
	}

	if cfg.Telemetry.Enabled() {
		printTelemetrySummary(cfg.Telemetry.Snapshot())
	}

	if *events {
		fmt.Println("\nadaptation events:")
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	if *jsonOut != "" {
		writeOutput(*jsonOut, *force, "JSON", func(f io.Writer) error {
			return export.WriteJSON(f, export.FromResult(res, true, true))
		})
	}
	if *traceOut != "" {
		writeOutput(*traceOut, *force, fmt.Sprintf("trace (%d rows)", len(res.Records)), func(f io.Writer) error {
			log := trace.NewLog()
			for _, r := range res.Records {
				log.Record(r)
			}
			return log.WriteRecordsCSV(f)
		})
	}
	if *telOut != "" {
		writeOutput(*telOut, *force, "telemetry snapshot", cfg.Telemetry.WriteSnapshot)
	}
	if *chrome != "" {
		writeOutput(*chrome, *force, "Chrome trace", cfg.Telemetry.WriteChromeTrace)
	}
	if *httpAddr != "" {
		srv, addr, err := cfg.Telemetry.Serve(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nserving telemetry on http://%s/ (ctrl-c to stop)\n", addr)
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		<-stop
		srv.Close()
	}
}

// printTelemetrySummary renders the per-stage latency quantiles and
// forecast accuracy the recorder collected during the run.
func printTelemetrySummary(snap telemetry.Snapshot) {
	fmt.Println("\ntelemetry")
	fmt.Println("stage  latency p50/p95/p99/max (ms)        slack p50  forecast MAPE exec/comm")
	for _, st := range snap.Stages {
		var mape string
		for _, fs := range snap.Forecast {
			if fs.Task == st.Task && fs.Stage == st.Stage {
				if fs.Comm.Matched > 0 {
					mape = fmt.Sprintf("%.1f%% / %.1f%%", fs.Exec.MAPEPct, fs.Comm.MAPEPct)
				} else {
					mape = fmt.Sprintf("%.1f%% / -", fs.Exec.MAPEPct)
				}
			}
		}
		l := st.Latency
		fmt.Printf("%s/%-2d %8.1f %8.1f %8.1f %8.1f  %9.2f  %s\n",
			st.Task, st.Stage, l.P50MS, l.P95MS, l.P99MS, l.MaxMS, st.Slack.P50, mape)
	}
	for _, tk := range snap.Tasks {
		l := tk.Latency
		fmt.Printf("%s e2e %6.1f %8.1f %8.1f %8.1f  %9.2f  (%d instances, %d missed)\n",
			tk.Task, l.P50MS, l.P95MS, l.P99MS, l.MaxMS, tk.Slack.P50, tk.Instances, tk.Missed)
	}
	n := snap.Network
	fmt.Printf("network: %d wire / %d local msgs, buffer p95 %.2fms, wire p95 %.2fms\n",
		n.WireMsgs, n.LocalMsgs, n.BufferDelay.P95MS, n.WireDelay.P95MS)
}

// writeOutput opens path for writing — creating parent directories,
// refusing to overwrite an existing file unless -force was given, and
// treating "-" as stdout — then runs write against it.
func writeOutput(path string, force bool, what string, write func(io.Writer) error) {
	if path == "-" {
		if err := write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !force {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if os.IsExist(err) {
			fatal(fmt.Errorf("%s exists; pass -force to overwrite", path))
		}
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s written to %s\n", what, path)
}

func buildPattern(name string, min, max, periods int) (workload.Pattern, error) {
	switch name {
	case "triangular":
		return workload.NewTriangular(min, max, periods, 2), nil
	case "increasing":
		return workload.NewIncreasingRamp(min, max, periods), nil
	case "decreasing":
		return workload.NewDecreasingRamp(min, max, periods), nil
	case "step":
		return workload.NewStep(min, max, periods, periods/2), nil
	case "burst":
		return workload.NewBurst(min, max, periods, 20, 5), nil
	case "sinusoid":
		return workload.NewSinusoid(min, max, periods, 3), nil
	case "constant":
		return workload.NewConstant(max, periods), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

// faultList parses repeated -fail flags of the form node@at[+duration],
// e.g. "2@10.2s+15s"; a missing duration means a permanent crash.
type faultList []core.Fault

func (f *faultList) String() string {
	parts := make([]string, len(*f))
	for i, ft := range *f {
		parts[i] = fmt.Sprintf("%d@%v", ft.Node, ft.At)
		if ft.Duration > 0 {
			parts[i] += fmt.Sprintf("+%v", ft.Duration)
		}
	}
	return strings.Join(parts, ",")
}

func (f *faultList) Set(v string) error {
	nodeStr, rest, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("want node@at[+duration], got %q", v)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return fmt.Errorf("bad node in %q: %v", v, err)
	}
	atStr, durStr, hasDur := strings.Cut(rest, "+")
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return fmt.Errorf("bad crash time in %q: %v", v, err)
	}
	ft := core.Fault{Node: node, At: sim.Time(at.Nanoseconds())}
	if hasDur {
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return fmt.Errorf("bad duration in %q: %v", v, err)
		}
		ft.Duration = sim.Time(dur.Nanoseconds())
	}
	*f = append(*f, ft)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(1)
}
