// Command rmsim runs a single adaptive resource-management simulation and
// prints its metrics, adaptation events, and (optionally) the per-period
// trace as CSV.
//
// Usage:
//
//	rmsim -alg predictive -pattern triangular -max 12000 -periods 120
//	rmsim -alg non-predictive -pattern step -max 8000 -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dynbench"
	"repro/internal/experiment"
	"repro/internal/export"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		algFlag  = flag.String("alg", "predictive", "algorithm: predictive | non-predictive | greedy | static-max")
		pattern  = flag.String("pattern", "triangular", "workload: triangular | increasing | decreasing | step | burst | sinusoid | constant")
		wlFile   = flag.String("workload-file", "", "replay a recorded trace: one tracks-per-period integer per line ('#' comments allowed); overrides -pattern")
		min      = flag.Int("min", 500, "minimum workload (tracks per period)")
		max      = flag.Int("max", 12000, "maximum workload (tracks per period)")
		periods  = flag.Int("periods", 120, "number of periods to simulate")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		traceOut = flag.String("trace", "", "write the per-period trace CSV to this file")
		events   = flag.Bool("events", false, "print every adaptation event")
		jsonOut  = flag.String("json", "", "write the full run as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	alg := core.Algorithm(*algFlag)
	if !core.ValidAlgorithm(alg) {
		fatal(fmt.Errorf("unknown algorithm %q (predictive | non-predictive | greedy | static-max)", *algFlag))
	}
	var p workload.Pattern
	var err error
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fatal(err)
		}
		values, perr := workload.ParseSeries(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		p = workload.NewCustom(*wlFile, values)
	} else {
		p, err = buildPattern(*pattern, *min, *max, *periods)
		if err != nil {
			fatal(err)
		}
	}
	setup, err := experiment.BenchmarkSetup(p)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	res, err := core.Run(cfg, alg, []core.TaskSetup{setup})
	if err != nil {
		fatal(err)
	}

	m := res.Metrics
	fmt.Printf("algorithm        %s\n", alg)
	fmt.Printf("pattern          %s over %d periods\n", p.Name(), p.Periods())
	fmt.Printf("completed        %d/%d instances\n", m.Completed, m.Periods)
	fmt.Printf("missed deadlines %d (%.2f%%)\n", m.Missed, m.MissedPct())
	fmt.Printf("mean CPU util    %.2f%%\n", m.CPUUtilPct())
	fmt.Printf("mean net util    %.2f%%\n", m.NetUtilPct())
	fmt.Printf("mean replicas    %.2f of %g (%.1f%% use)\n", m.MeanReplicas, m.MaxReplicas, m.ReplicaUsePct())
	fmt.Printf("adaptations      %d replications, %d shutdowns, %d allocation failures\n",
		m.Replications, m.Shutdowns, m.AllocFailures)
	fmt.Printf("combined metric  C = %.2f\n", m.Combined())

	if len(res.Records) > 0 {
		lat := make([]float64, len(res.Records))
		for i, r := range res.Records {
			lat[i] = r.EndToEnd().Milliseconds()
		}
		s := stats.Summarize(lat)
		fmt.Printf("latency (ms)     p50=%.1f p95=%.1f max=%.1f (deadline %v)\n",
			s.P50, s.P95, s.Max, dynbench.Deadline)
	}

	if *events {
		fmt.Println("\nadaptation events:")
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := export.WriteJSON(out, export.FromResult(res, true, true)); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			fmt.Printf("\nJSON written to %s\n", *jsonOut)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		log := trace.NewLog()
		for _, r := range res.Records {
			log.Record(r)
		}
		if err := log.WriteRecordsCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace written to %s (%d rows)\n", *traceOut, len(res.Records))
	}
}

func buildPattern(name string, min, max, periods int) (workload.Pattern, error) {
	switch name {
	case "triangular":
		return workload.NewTriangular(min, max, periods, 2), nil
	case "increasing":
		return workload.NewIncreasingRamp(min, max, periods), nil
	case "decreasing":
		return workload.NewDecreasingRamp(min, max, periods), nil
	case "step":
		return workload.NewStep(min, max, periods, periods/2), nil
	case "burst":
		return workload.NewBurst(min, max, periods, 20, 5), nil
	case "sinusoid":
		return workload.NewSinusoid(min, max, periods, 3), nil
	case "constant":
		return workload.NewConstant(max, periods), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(1)
}
