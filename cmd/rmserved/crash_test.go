package main_test

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/experiment"
)

// buildDaemon compiles the rmserved binary once per test into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rmserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rmserved: %v\n%s", err, out)
	}
	return bin
}

// startDaemon execs the binary and blocks until it announces its bound
// address, returning the process handle and base URL.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := bufio.NewScanner(stdout)
	announce := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "rmserved listening on "); ok {
				announce <- strings.TrimSuffix(rest, "/v1")
				return
			}
		}
		close(announce)
	}()
	select {
	case base := <-announce:
		if base == "" {
			cmd.Process.Kill()
			t.Fatal("daemon exited without announcing its address")
		}
		return cmd, base
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never announced its listen address")
		return nil, ""
	}
}

// crashDataDir picks the -data-dir for the crash e2e. CI sets
// RMSERVED_E2E_DATADIR to a directory it uploads as an artifact when the
// job fails, so a broken journal is inspectable post-mortem; locally the
// test tempdir is used and cleaned up as usual.
func crashDataDir(t *testing.T) string {
	t.Helper()
	if root := os.Getenv("RMSERVED_E2E_DATADIR"); root != "" {
		dir := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// TestCrashRestart is the crash-safety acceptance e2e: SIGKILL the daemon
// mid-job, restart it on the same -data-dir, and prove the client
// converges — by resubmitting the same request (idempotent by
// fingerprint) — to a result byte-identical to an uninterrupted direct
// run. The journal replay must also resurface the interrupted job itself,
// findable by fingerprint.
func TestCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := buildDaemon(t)
	dataDir := crashDataDir(t)

	cmd, base := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	defer cmd.Process.Kill()
	cl := client.New(base)
	ctx := context.Background()

	// A job slow enough to still be in flight when the SIGKILL lands.
	values := make([]int, 400_000)
	for i := range values {
		values[i] = 9500
	}
	seed := uint64(990101)
	req := api.RunRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     api.AlgPredictive,
		Seed:          &seed,
		Task:          api.TaskSpec{Pattern: api.Pattern{Kind: api.PatternCustom, Label: "crash", Values: values}},
	}
	job, err := cl.SubmitRun(ctx, req)
	if err != nil {
		t.Fatalf("submitting the crash-target job: %v", err)
	}
	if job.Fingerprint == "" {
		t.Fatal("accepted job carries no fingerprint")
	}

	// Wait for the job to actually start, then kill the process cold: no
	// drain, no journal finish record — the WAL's last word is "start".
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := cl.Job(ctx, job.ID)
		if err != nil {
			t.Fatalf("polling for running state: %v", err)
		}
		if j.State == api.JobRunning {
			break
		}
		if api.TerminalState(j.State) {
			t.Fatalf("job reached %q before the crash could be injected; enlarge the workload", j.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %q)", j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill, not a failure

	// Restart on the same data dir. Replay must re-enqueue the
	// interrupted job, findable by its fingerprint.
	cmd2, base2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	defer cmd2.Process.Kill()
	cl2 := client.New(base2)

	jobs, err := cl2.Jobs(ctx)
	if err != nil {
		t.Fatalf("listing jobs after restart: %v", err)
	}
	replayed := false
	for _, j := range jobs {
		if j.Fingerprint == job.Fingerprint {
			replayed = true
		}
	}
	if !replayed {
		t.Errorf("restarted daemon lists no job with fingerprint %s; journal replay lost the interrupted job", job.Fingerprint)
	}

	// The client's recovery move: resubmit the identical request. The
	// fingerprint dedupes it against the replayed job's run, so this
	// converges without double work once the replay finishes.
	waitCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	served, err := cl2.RunSync(waitCtx, req)
	if err != nil {
		t.Fatalf("resubmitted job after crash-restart: %v", err)
	}

	cfg, alg, setups, err := experiment.MaterializeRun(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := experiment.ScheduledRun(cfg, alg, setups)
	if err != nil {
		t.Fatal(err)
	}
	direct := experiment.OutcomeToAPI(out)
	servedJSON, _ := json.Marshal(served)
	directJSON, _ := json.Marshal(direct)
	if string(servedJSON) != string(directJSON) {
		t.Errorf("post-crash result differs from an uninterrupted run:\n got %s\nwant %s", servedJSON, directJSON)
	}

	// Clean exit for the survivor: SIGTERM drains and exits 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd2.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("restarted daemon exited non-zero after drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted daemon never exited after SIGTERM")
	}
}
