package main_test

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/experiment"
)

// TestSmoke builds the real rmserved binary, starts it on a free port,
// drives it over the public API with internal/client, and proves the
// served result is byte-for-byte what a direct experiment.ScheduledRun
// computes for the same cell. It then exercises the SIGTERM drain: a
// job in flight at signal time finishes, its result is fetched during
// the drain, and the process exits 0.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "rmserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rmserved: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "rmserved listening on http://ADDR/v1" once bound.
	lines := bufio.NewScanner(stdout)
	base := ""
	announce := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "rmserved listening on "); ok {
				announce <- strings.TrimSuffix(rest, "/v1")
				return
			}
		}
		close(announce)
	}()
	select {
	case base = <-announce:
		if base == "" {
			t.Fatal("daemon exited without announcing its address")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never announced its listen address")
	}

	cl := client.New(base)
	ctx := context.Background()

	// A figure 9 cell: the triangular sweep pattern at 4 workload units,
	// explicit seed so the direct run below addresses the same cell.
	seed := uint64(990001)
	req := api.RunRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     api.AlgPredictive,
		Seed:          &seed,
		Task: api.TaskSpec{
			Pattern: api.Pattern{Kind: api.PatternTriangular, Min: 500, Max: 2000, Periods: 120, Cycles: 2},
		},
	}
	served, err := cl.RunSync(ctx, req)
	if err != nil {
		t.Fatalf("running fig9 cell through the daemon: %v", err)
	}

	cfg, alg, setups, err := experiment.MaterializeRun(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := experiment.ScheduledRun(cfg, alg, setups)
	if err != nil {
		t.Fatal(err)
	}
	direct := experiment.OutcomeToAPI(out)
	if served != direct {
		t.Errorf("served result differs from direct ScheduledRun:\n got %+v\nwant %+v", served, direct)
	}

	// Put a slower job in flight, then send SIGTERM mid-run: the drain
	// must finish the job, serve its result, and exit 0.
	values := make([]int, 200_000)
	for i := range values {
		values[i] = 9000
	}
	dseed := uint64(990002)
	job, err := cl.SubmitRun(ctx, api.RunRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     api.AlgPredictive,
		Seed:          &dseed,
		Task:          api.TaskSpec{Pattern: api.Pattern{Kind: api.PatternCustom, Label: "drain", Values: values}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	final, err := cl.Wait(waitCtx, job.ID)
	if err != nil {
		t.Fatalf("waiting for the in-flight job during drain: %v", err)
	}
	if final.State != api.JobDone || final.Run == nil {
		t.Errorf("drained job ended %q (error %q), want done with a result", final.State, final.Error)
	}

	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("daemon exited non-zero after drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after SIGTERM drain")
	}
}
