// Command rmserved serves the simulation engine as a long-lived daemon:
// runs and sweeps submitted over the versioned v1 HTTP API flow through
// the same shared run scheduler the batch tools use, so identical
// submissions — across clients, or between a client and a local
// rmexperiments — are simulated once and deduped everywhere else.
//
// Usage:
//
//	rmserved                        # listen on :8080, NumCPU workers
//	rmserved -addr 127.0.0.1:0      # pick a free port (printed on stdout)
//	rmserved -workers 4 -queue 128  # bound concurrency and backpressure
//	rmserved -cache-dir .rmcache    # persistent cross-restart run cache
//	rmserved -data-dir /var/rmserved  # durable job journal: restart replays
//	rmserved -job-timeout 5m        # per-job wall-clock deadline
//	rmserved -job-retries 5         # attempts per job for transient failures
//	rmserved -max-sessions 32       # cap live streaming sessions (POST /v1/sessions)
//	rmserved -log-format json       # structured logs for a collector
//	rmserved -pprof                 # mount /debug/pprof/* (opt-in)
//
// Operational endpoints: /healthz (liveness), /readyz (readiness; 503
// the instant a drain begins), /v1/metrics (Prometheus wall-clock
// request/queue/scheduler metrics), and — with -pprof — /debug/pprof/*.
//
// Submit with curl (see README §Serving) or the internal/client package.
// SIGTERM/SIGINT drains: admissions close with 503, in-flight and queued
// jobs finish, results stay fetchable until the last job settles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/server"
)

func main() {
	var (
		addr       = cliflag.Addr(flag.CommandLine, ":8080")
		parallel   = cliflag.Parallel(flag.CommandLine)
		cacheDir   = cliflag.CacheDir(flag.CommandLine)
		logFormat  = cliflag.LogFormat(flag.CommandLine)
		workers    = flag.Int("workers", 0, "max concurrently executing jobs (0 = NumCPU)")
		queue      = flag.Int("queue", 64, "max jobs waiting for a worker before submissions get 429")
		dataDir    = flag.String("data-dir", "", "durable state directory: the job journal lives here and, unless -cache-dir overrides, the run cache; a restart replays unfinished jobs")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job wall-clock deadline; a job past it fails without retry (0 = no deadline)")
		jobRetries = flag.Int("job-retries", 0, "max attempts per job for transient failures, backoff-spaced (0 = default 3)")
		maxSess    = flag.Int("max-sessions", 0, "max live streaming sessions before POST /v1/sessions gets 429 (0 = default 16)")
		pprofFlag  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in: exposes runtime internals)")
		verbose    = flag.Bool("v", false, "log at debug level (per-request start lines)")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(log)

	srv, err := server.New(server.Options{
		Workers:     *workers,
		QueueDepth:  *queue,
		Parallelism: *parallel,
		CacheDir:    *cacheDir,
		DataDir:     *dataDir,
		JobTimeout:  *jobTimeout,
		Retry:       resil.Backoff{Attempts: *jobRetries},
		MaxSessions: *maxSess,
		Logger:      log,
		EnablePprof: *pprofFlag,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		log.Info("durable job journal enabled", "data_dir", *dataDir)
	}
	if *pprofFlag {
		log.Info("pprof profiling endpoints enabled", "path", "/debug/pprof/")
	}
	// The accepted algorithm set is the policy registry, not a hard-coded
	// list; log it so operators can see what a deployed daemon accepts.
	log.Info("allocation policies registered", "policies", core.AlgorithmNames())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The smoke test (and humans scripting against -addr :0) parse this
	// line for the bound address; keep its shape stable.
	fmt.Printf("rmserved listening on http://%s/v1\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop()

	log.Info("signal received; draining")
	// Drain first — jobs finish and results stay fetchable — then shut the
	// listener down. A second signal would kill the process the usual way.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Error("drain failed", "error", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("shutdown", "error", err)
	}
	log.Info("rmserved exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmserved:", err)
	os.Exit(1)
}
