// Package repro's root benchmarks regenerate each paper artifact under
// the Go benchmark harness: one benchmark per table and figure (the
// `rmexperiments` command prints the full sweeps; these time one
// representative unit of each), plus ablation benchmarks for the design
// choices called out in DESIGN.md §5.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dynbench"
	"repro/internal/experiment"
	"repro/internal/network"
	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runOne executes a single simulation run and reports the combined metric.
func runOne(b *testing.B, alg core.Algorithm, pattern workload.Pattern, mutate func(*core.Config)) {
	b.Helper()
	setup, err := experiment.BenchmarkSetup(pattern)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	b.ResetTimer()
	var c float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg, alg, []core.TaskSetup{setup})
		if err != nil {
			b.Fatal(err)
		}
		c = res.Metrics.Combined()
	}
	b.ReportMetric(c, "combined-C")
}

// --- Tables -------------------------------------------------------------

func BenchmarkTable1BaselineSystemConstruction(b *testing.B) {
	setup, err := experiment.BenchmarkSetup(workload.NewConstant(500, 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.DefaultConfig(), core.Predictive, []core.TaskSetup{setup}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ExecRegressionFit(b *testing.B) {
	truth := dynbench.GroundTruthExec(dynbench.FilterStage)
	var samples []regress.ExecSample
	for _, u := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		for _, items := range []int{300, 900, 2100, 4200, 7500} {
			samples = append(samples, regress.ExecSample{
				Items: items, Util: u, Latency: truth.Latency(items, u)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := regress.FitExecModel(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3BufferSlopeFit(b *testing.B) {
	samples, err := profile.CommSamples(network.DefaultConfig(), profile.DefaultCommGrid())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.FitBufferSlope(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Profiling figures ---------------------------------------------------

func BenchmarkFig2FilterLatencyCurve(b *testing.B) {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	grid := profile.ExecGrid{Utils: []float64{0.8}, Items: []int{300, 2100, 4500, 7500}, Reps: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err := profile.ExecSamples(spec.Subtasks[dynbench.FilterStage].Demand, grid, 23)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := regress.FitPerUtilCurve(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3EvalDecideLatencyCurve(b *testing.B) {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	grid := profile.ExecGrid{Utils: []float64{0.6}, Items: []int{300, 2100, 4500, 7500}, Reps: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err := profile.ExecSamples(spec.Subtasks[dynbench.EvalDecideStage].Demand, grid, 23)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := regress.FitPerUtilCurve(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4LatencySurface(b *testing.B) {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	grid := profile.ExecGrid{
		Utils: []float64{0, 0.4, 0.8},
		Items: []int{300, 2100, 4500, 7500},
		Reps:  1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.ExecSamples(spec.Subtasks[dynbench.FilterStage].Demand, grid, 29); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8WorkloadPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Series(workload.NewIncreasingRamp(500, 15000, 30))
		workload.Series(workload.NewDecreasingRamp(500, 15000, 30))
		workload.Series(workload.NewTriangular(500, 15000, 30, 1))
	}
}

// --- Evaluation figures (one representative sweep point each) ------------

func BenchmarkFig9TriangularPredictive(b *testing.B) {
	runOne(b, core.Predictive, experiment.TriangularFactory(20*experiment.WorkloadUnit), nil)
}

func BenchmarkFig9TriangularNonPredictive(b *testing.B) {
	runOne(b, core.NonPredictive, experiment.TriangularFactory(20*experiment.WorkloadUnit), nil)
}

func BenchmarkFig10CombinedMetricTriangular(b *testing.B) {
	setupP, err := experiment.BenchmarkSetup(experiment.TriangularFactory(20 * experiment.WorkloadUnit))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			if _, err := core.Run(core.DefaultConfig(), alg, []core.TaskSetup{setupP}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig11IncreasingRampPoint(b *testing.B) {
	runOne(b, core.Predictive, experiment.IncreasingFactory(20*experiment.WorkloadUnit), nil)
}

func BenchmarkFig12DecreasingRampPoint(b *testing.B) {
	runOne(b, core.Predictive, experiment.DecreasingFactory(20*experiment.WorkloadUnit), nil)
}

func BenchmarkFig13CombinedMetricRamps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range []experiment.PatternFactory{experiment.IncreasingFactory, experiment.DecreasingFactory} {
			setup, err := experiment.BenchmarkSetup(f(20 * experiment.WorkloadUnit))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Run(core.DefaultConfig(), core.Predictive, []core.TaskSetup{setup}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblationOverlapZero removes the replica data halo: replication
// becomes free on the network, isolating the halo's contribution to the
// combined metric.
func BenchmarkAblationOverlapZero(b *testing.B) {
	runOne(b, core.Predictive, experiment.TriangularFactory(20*experiment.WorkloadUnit),
		func(c *core.Config) { c.OverlapFraction = 0 })
}

// BenchmarkAblationNoWarmup removes the replica spawn cost.
func BenchmarkAblationNoWarmup(b *testing.B) {
	runOne(b, core.Predictive, experiment.TriangularFactory(20*experiment.WorkloadUnit),
		func(c *core.Config) { c.WarmupDemand = 0 })
}

// BenchmarkAblationRRFastPath measures the scheduler's lone-job fast path
// against forced per-slice interleaving (two co-located jobs).
func BenchmarkAblationRRFastPath(b *testing.B) {
	b.Run("lone-job", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			p := cpu.NewProcessor(eng, 0, cpu.DefaultSlice)
			p.Submit(&cpu.Job{Demand: 500 * sim.Millisecond})
			eng.Run()
		}
	})
	b.Run("contended", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			p := cpu.NewProcessor(eng, 0, cpu.DefaultSlice)
			p.Submit(&cpu.Job{Demand: 250 * sim.Millisecond})
			p.Submit(&cpu.Job{Demand: 250 * sim.Millisecond})
			eng.Run()
		}
	})
}

// BenchmarkEngineEventThroughput is the simulation substrate's raw speed.
func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Microsecond, func() {})
		eng.Step()
	}
}

// BenchmarkSegmentThroughput times message transport on the shared medium.
func BenchmarkSegmentThroughput(b *testing.B) {
	eng := sim.NewEngine()
	seg := network.NewSegment(eng, network.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Send(&network.Message{From: i % 6, To: (i + 1) % 6, PayloadBytes: 8000})
		eng.Run()
	}
}

// BenchmarkAblationDisciplines compares simulation cost across CPU
// scheduling disciplines at a fixed workload point.
func BenchmarkAblationDisciplines(b *testing.B) {
	for _, d := range []cpu.Discipline{cpu.RoundRobin, cpu.FIFO, cpu.ProcessorSharing} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			runOne(b, core.Predictive, experiment.TriangularFactory(20*experiment.WorkloadUnit),
				func(c *core.Config) { c.Discipline = d })
		})
	}
}

// BenchmarkClockSyncOverhead measures the cost of running the Mills-style
// synchronizer and node-local clocks alongside the workload.
func BenchmarkClockSyncOverhead(b *testing.B) {
	runOne(b, core.Predictive, experiment.TriangularFactory(20*experiment.WorkloadUnit),
		func(c *core.Config) { c.ClockSync = true })
}
